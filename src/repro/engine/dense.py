"""Dense compiled-DFA tier: bulk scanning above the lazy config cache.

The lazy backend (:mod:`repro.engine.lazy`) wins 5.6–85× over the
interpretive engine but tops out around a few MB/s: a warm scan is
still *one Python dict lookup per byte*.  On real traffic the cache is
warm and **stable** (hit rate >99 %, no evictions — the profile
BENCH_lazy.json demonstrates), so the interned config graph can be
*compiled* once and then driven without touching the interpreter per
byte.  This module is that tier:

* **Byte-class compression** — the 256-symbol alphabet collapses to the
  equivalence classes of :func:`repro.engine.tables.byte_classes` (two
  bytes with the same enabled-transition list step identically), so the
  transition table is ``num_configs × num_classes``, not ``× 256``, and
  a whole buffer is class-translated at C speed with
  ``bytes.translate``.
* **Dense tables** — ``(config, class) → next config`` as a NumPy
  ``int32`` matrix plus per-edge emission ids and work counters; a
  sentinel ``-1`` marks edges that leave the compiled region.
* **Self-loop run skipping / literal prefilter** — most of a scan sits
  in a config that maps most classes back to itself (the "resting"
  frontier between rule prefixes).  Those runs are skipped wholesale:
  when the escape set of a config is a handful of *bytes*, repeated
  ``bytes.find`` calls (with per-byte position caching) jump straight
  to the next interesting offset — the classic literal prefilter,
  generalized from required-byte sets; otherwise a vectorized NumPy
  block search finds the first escaping class.  Emitting self-loops
  (``.*``-style post-match runs) are extracted vectorized as
  run-length-compressed emission events, never per byte.
* **Optional 2-byte stride** — a ``(config, class²)`` pair table steps
  two bytes per interpreter iteration on quiet edges (promoting the
  idea ``bench_baseline_multistride.py`` measures; pairs touching an
  emission or the region boundary fall back to single steps).
* **Mid-buffer de-opt** — an edge marked ``-1`` drops to lazy
  interpretation *at that offset* (warming the cache as it goes) and
  re-enters compiled code as soon as the frontier is a compiled config
  again; a cache flush mid-scan invalidates the table and the caller
  falls back to a plain lazy run (flush renumbers every config id).

The tier is a *pure accelerator*: it produces byte-identical matches,
:class:`~repro.engine.counters.ExecutionStats` and engine-sampler
observations (the cross-backend invariant the conformance suite
enforces), because every edge carries the exact work counters of the
interpretive step it replaces.

Table builds are charged against :class:`repro.guard.budget.Budget`
modelled memory when a meter is supplied — dense tables are
``configs × classes`` large and promotion must degrade gracefully
(:data:`repro.guard.degrade.BACKEND_LADDER`), never OOM.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.engine.lazy import LazyConfigCache
from repro.engine.tables import ByteClasses, byte_classes
from repro.guard import faultinject
from repro.guard.budget import BudgetMeter
from repro.guard.errors import AllocationFailed

__all__ = [
    "DEFAULT_PROMOTE_AFTER",
    "DENSE_MIN_HIT_RATE",
    "DenseScanOutcome",
    "DenseTier",
]

#: Sentinel for transitions leaving the compiled region (de-opt edges).
DEOPT = -1

#: Bytes a ``backend="dense"`` engine scans lazily before auto-promoting
#: (0 = promote eagerly after the first run).
DEFAULT_PROMOTE_AFTER = 1 << 16

#: Auto-promotion gate: the cache must be this warm (and eviction-free).
DENSE_MIN_HIT_RATE = 0.99

#: Max distinct escape *bytes* for the ``bytes.find`` prefilter path;
#: larger escape sets use the vectorized block search instead.
PREFILTER_FIND_MAX = 4

#: Initial block size (bytes) of the vectorized escape search.  Blocks
#: double per miss (up to 1 MiB), so a short run costs one small gather
#: while a megabyte-long quiet stretch still takes a handful of scans.
ESCAPE_BLOCK = 64

#: A skip run shorter than this counts as "short"; a config that keeps
#: producing short runs stops trying to skip (search overhead would
#: exceed stepping).
SHORT_RUN_BYTES = 8
SHORT_RUN_STRIKES = 16

_ENC_SHIFT = 24
_ENC_MASK = (1 << _ENC_SHIFT) - 1


@dataclass
class DenseScanOutcome:
    """One :meth:`DenseTier.scan` result — raw events, not matches.

    ``events`` are run-length-compressed emissions: ``(emission id,
    first position, last position)`` with 1-based inclusive positions;
    decode ids via :attr:`DenseTier.emissions`.  ``reason`` is one of
    ``"end"``, ``"single_match"``, ``"deadline"``, ``"invalidated"``
    (cache flushed mid-scan: every table row is stale, rerun lazily).
    """

    events: list = field(default_factory=list)
    final_config: int = 0
    consumed: int = 0
    reason: str = "end"
    matched_rules: int = 0
    #: de-opt entries / bytes interpreted lazily during them
    deopts: int = 0
    deopt_bytes: int = 0
    #: bytes skipped by self-loop runs (prefilter + block search)
    skipped_bytes: int = 0
    #: bytes consumed by single/pair stepping
    stepped_bytes: int = 0


class DenseTier:
    """Dense numpy transition tables compiled from a warm lazy cache.

    Built by :meth:`build` over a :class:`LazyConfigCache` snapshot;
    :meth:`scan` then drives whole buffers.  The tier keeps a reference
    to the cache: de-opt segments interpret (and keep warming) it, and
    a flush there — which renumbers every config id — flips
    :meth:`valid` to ``False``.
    """

    def __init__(self) -> None:  # populated by build()
        self.cache: LazyConfigCache = None  # type: ignore[assignment]
        self.classes: ByteClasses = None  # type: ignore[assignment]
        self.num_configs = 0
        self.num_classes = 0
        self.stride = 1
        self.prefilter = True
        self.flush_epoch = 0
        self.build_seconds = 0.0
        self.nbytes = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        cache: LazyConfigCache,
        *,
        stride: int = 1,
        prefilter: bool = True,
        meter: Optional[BudgetMeter] = None,
        classes: Optional[ByteClasses] = None,
    ) -> "DenseTier":
        """Compile the cache's interned config graph into dense tables.

        Pure w.r.t. the cache: every edge is read via memoized entries
        or :meth:`LazyConfigCache.compute` — nothing is interned or
        memoized, so building cannot flush or evict.  Edges whose
        successor frontier is not interned yet become :data:`DEOPT`.

        ``meter`` charges the table footprint against modelled memory
        *before* allocation (raising
        :class:`~repro.guard.errors.MemoryBudgetExceeded`);
        ``MemoryError`` during allocation raises
        :class:`~repro.guard.errors.AllocationFailed` — both step the
        guard ladder back to lazy instead of crashing a scan.
        """
        if stride not in (1, 2):
            raise ValueError(f"dense stride must be 1 or 2 (got {stride})")
        started = time.perf_counter()
        tier = cls()
        tier.cache = cache
        tier.stride = stride
        tier.prefilter = prefilter
        tier.flush_epoch = cache.stats.flushes
        tables = cache.tables
        bc = classes if classes is not None else byte_classes(tables.by_symbol)
        tier.classes = bc
        n = cache.num_configs
        k = bc.num_classes
        if n >= 1 << _ENC_SHIFT:
            raise AllocationFailed(
                f"dense tier cannot encode {n} configs (limit {1 << _ENC_SHIFT})"
            )
        tier.num_configs = n
        tier.num_classes = k

        # trans/emit/taken int32 + reference step-rows (pointers) + translate
        nbytes = 3 * n * k * 4 + n * (k + 1) * 8 + 256
        if stride == 2:
            nbytes += n * k * k * 12  # int32 pair table + flat python rows
        tier.nbytes = nbytes
        if meter is not None:
            meter.charge_memory(nbytes, stage="dense.promote")
        try:
            faultinject.fire("alloc", backend="dense")
            trans = np.empty((n, k), dtype=np.int32)
            emit = np.zeros((n, k), dtype=np.int32)
            taken = np.zeros((n, k), dtype=np.int32)
        except MemoryError as exc:
            raise AllocationFailed(f"dense table allocation failed: {exc}") from exc

        # emission interning: id 0 is "no emission"
        emissions: list[tuple[tuple[int, ...], int]] = [((), 0)]
        eid_of: dict[int, int] = {0: 0}
        memo = cache.transitions
        compute = cache.compute
        reps = bc.representatives
        for c in range(n):
            base = c << 8
            row_t = trans[c]
            row_e = emit[c]
            row_k = taken[c]
            for j, rep in enumerate(reps):
                entry = memo.get(base | rep)
                if entry is not None:
                    nid, slots, mask, tk = entry
                    if nid >= n:
                        nid = DEOPT
                else:
                    nid, slots, mask, tk = compute(c, rep)
                    if nid is None or nid >= n:
                        nid = DEOPT
                row_t[j] = nid
                row_k[j] = tk
                if mask:
                    eid = eid_of.get(mask)
                    if eid is None:
                        eid = len(emissions)
                        eid_of[mask] = eid
                        emissions.append((slots, mask))
                    row_e[j] = eid
        tier.trans_np = trans
        tier.emit_np = emit
        tier.taken_np = taken
        tier.emissions = emissions
        tier._eid_of = eid_of

        # python-list step tables: enc = (eid << 24) | next, -1 = de-opt
        enc = np.where(
            trans >= 0, (emit.astype(np.int64) << _ENC_SHIFT) | trans, -1
        )
        tier.enc_rows = [row.tolist() for row in enc]
        tier.taken_rows = [row.tolist() for row in taken]

        # self-loop structure per config
        loop = trans == np.arange(n, dtype=np.int32)[:, None]  # (n, k)
        esc = ~loop
        tier.esc_np = [row.copy() for row in esc]
        tier.loop_b: list[Optional[bytes]] = []
        tier.emit_loop: list[bool] = []
        tier.esc_bytes: list[Optional[bytes]] = []
        translate = bc.translate
        members_of: list[list[int]] = [[] for _ in range(k)]
        for b in range(256):
            members_of[translate[b]].append(b)
        for c in range(n):
            row = loop[c]
            if not row.any():
                tier.loop_b.append(None)
                tier.emit_loop.append(False)
                tier.esc_bytes.append(None)
                continue
            tier.loop_b.append(row.astype(np.uint8).tobytes())
            tier.emit_loop.append(bool((row & (emit[c] > 0)).any()))
            esc_classes = np.flatnonzero(esc[c])
            byte_list: list[int] = []
            for cls_id in esc_classes.tolist():
                byte_list.extend(members_of[cls_id])
                if len(byte_list) > PREFILTER_FIND_MAX:
                    break
            if prefilter and 0 < len(byte_list) <= PREFILTER_FIND_MAX:
                tier.esc_bytes.append(bytes(byte_list))
            else:
                tier.esc_bytes.append(None)
        tier._short_runs = [0] * n

        # reference step-rows: entry ``j`` is *the next config's row
        # object* on quiet in-region edges (no emission, no de-opt, not
        # a skippable self-loop), so the non-stats scan follows row
        # references with ~4 interpreter ops per byte; every special
        # case is ``None`` and breaks the burst back to the full-logic
        # step.  ``row[num_classes]`` carries the config id so the
        # burst can recover where it landed.
        trans_l = trans.tolist()
        skip_rows = np.fromiter(
            (tier.loop_b[c] is not None for c in range(n)), dtype=bool, count=n
        )
        burst_ok = (trans >= 0) & (emit == 0) & ~(loop & skip_rows[:, None])
        rows: list[list] = [[None] * (k + 1) for _ in range(n)]
        for c in range(n):
            rows[c][k] = c
        for c in range(n):
            row = rows[c]
            tr = trans_l[c]
            for j in np.flatnonzero(burst_ok[c]).tolist():
                row[j] = rows[tr[j]]
        tier.ref_rows = rows

        tier.examined_np = np.array(
            [cache.examined_by_byte[rep] for rep in reps], dtype=np.int64
        )
        tier.examined_list = tier.examined_np.tolist()

        tier.pair_np = None
        tier._pair_ref: list[Optional[list]] = [None] * n
        if stride == 2:
            try:
                ok1 = (trans >= 0) & (emit == 0)
                mid = np.where(ok1, trans, 0)
                t2 = trans[mid]  # (n, k, k)
                e2 = emit[mid]
                tier.pair_np = np.where(
                    ok1[:, :, None] & (t2 >= 0) & (e2 == 0), t2, -1
                ).astype(np.int32)
            except MemoryError as exc:
                raise AllocationFailed(
                    f"dense pair-table allocation failed: {exc}"
                ) from exc

        tier.build_seconds = time.perf_counter() - started
        return tier

    def valid(self) -> bool:
        """``False`` once the cache flushed (config ids renumbered)."""
        return self.cache.stats.flushes == self.flush_epoch

    # -- scanning ----------------------------------------------------------

    def _intern_eid(self, mask: int, slots: tuple) -> int:
        eid = self._eid_of.get(mask)
        if eid is None:
            eid = len(self.emissions)
            self._eid_of[mask] = eid
            self.emissions.append((slots, mask))
        return eid

    def scan(
        self,
        payload: bytes,
        *,
        start_config: int = 0,
        collect_stats: bool = False,
        stats=None,
        sampler=None,
        single_match: bool = False,
        matched_rules: int = 0,
        all_rules_mask: int = 0,
        deadline_at: Optional[float] = None,
        deadline_stride: int = 4096,
    ) -> DenseScanOutcome:
        """Bulk-scan ``payload`` from ``start_config``.

        Returns raw emission events (see :class:`DenseScanOutcome`);
        the caller decodes them into matches.  With ``collect_stats``
        the supplied :class:`~repro.engine.counters.ExecutionStats` is
        advanced exactly as the python backend would (taken/examined/
        active-pair/peak per position); with ``sampler`` the strided
        engine-sampler observations are reproduced exactly.  Deadline
        expiry *returns* (reason ``"deadline"``) rather than raising —
        only the caller can build the honest partial result.
        """
        n = len(payload)
        out = DenseScanOutcome(matched_rules=matched_rules)
        events = out.events
        cls_b = payload.translate(self.classes.translate)
        cls_np = np.frombuffer(cls_b, dtype=np.uint8)
        cur = start_config
        pos = 0
        num_configs = self.num_configs
        enc_rows = self.enc_rows
        loop_b = self.loop_b
        emissions = self.emissions
        cstats = self.cache.config_stats
        stride = sampler.stride if sampler is not None else 0
        track = collect_stats or sampler is not None
        ref_rows = self.ref_rows
        tail = self.num_classes
        kk = self.num_classes
        pair_mode = self.pair_np is not None and not track
        pair_ref = self._pair_ref
        find_cache: dict[int, int] = {}
        since_check = 0

        def deadline_hit() -> bool:
            faultinject.fire("engine.step_delay")
            return time.perf_counter() > deadline_at

        def run_stats(c: int, a: int, b: int) -> None:
            """Stats/sampler for a constant-config run (indexes [a, b),
            positions a+1..b, post-step config ``c``)."""
            if a >= b:
                return
            total, peak, width = cstats[c]
            if collect_stats:
                seg = cls_np[a:b]
                stats.transitions_taken += int(self.taken_np[c][seg].sum())
                stats.transitions_examined += int(self.examined_np[seg].sum())
                stats.active_pair_total += total * (b - a)
                if peak > stats.max_state_activation:
                    stats.max_state_activation = peak
            if sampler is not None:
                p = a + 1
                p = ((p + stride - 1) // stride) * stride
                examined_list = self.examined_list
                while p <= b:
                    sampler.observe(total, width, examined_list[cls_b[p - 1]])
                    p += stride

        def add_event(eid: int, lo: int, hi: int) -> None:
            if events:
                last = events[-1]
                if last[0] == eid and last[2] + 1 == lo:
                    events[-1] = (eid, last[1], hi)
                    return
            events.append((eid, lo, hi))

        while pos < n:
            if deadline_at is not None and since_check >= deadline_stride:
                since_check = 0
                if deadline_hit():
                    out.reason = "deadline"
                    out.consumed = pos
                    break

            if cur >= num_configs:
                # interpreted region (also the entry path when the
                # start frontier was interned after the build)
                out.deopts += 1
                cur, pos, done = self._lazy_phase(
                    payload, cls_b, pos, cur, out, add_event,
                    collect_stats, stats, sampler, stride,
                    single_match, all_rules_mask,
                    deadline_at, deadline_stride,
                )
                since_check += 1
                if done:
                    break
                continue

            k = cls_b[pos]
            lb = loop_b[cur]
            if lb is not None and lb[k]:
                # -- skip phase: find the first escaping index ---------
                j = self._find_escape(payload, cls_np, cur, pos, n, find_cache)
                run_len = j - pos
                if run_len < SHORT_RUN_BYTES:
                    strikes = self._short_runs[cur] + 1
                    self._short_runs[cur] = strikes
                    if strikes >= SHORT_RUN_STRIKES and not self.emit_loop[cur]:
                        self._disable_skip(cur)  # stop trying to skip here
                else:
                    self._short_runs[cur] = 0
                if self.emit_loop[cur]:
                    if single_match:
                        stop = self._emitting_run_scalar(
                            cls_b, cur, pos, j, out, add_event,
                            collect_stats, stats, sampler, stride,
                            all_rules_mask,
                        )
                        if stop:
                            out.skipped_bytes += out.consumed - pos
                            return self._finish(out, cur, "single_match")
                    else:
                        self._extract_emissions(
                            cls_np, cur, pos, j, out, add_event
                        )
                        if track:
                            run_stats(cur, pos, j)
                elif track:
                    run_stats(cur, pos, j)
                out.skipped_bytes += run_len
                pos = j
                since_check += 1
                continue

            # -- step phase -------------------------------------------
            if not track:
                # burst mode: follow row references on quiet edges —
                # emissions, de-opts, and skip opportunities are baked
                # in as None breaks, so the hot loop is a handful of
                # interpreter ops per byte (pair rows halve that again)
                p0 = pos
                limit = n
                if deadline_at is not None:
                    limit = min(n, pos + max(1, deadline_stride - since_check))
                if pair_mode:
                    row2 = pair_ref[cur]
                    if row2 is None:
                        row2 = self._pair_row(cur)
                    end2 = limit - 1
                    while pos < end2:
                        v2 = row2[cls_b[pos] * kk + cls_b[pos + 1]]
                        if v2 < 0:
                            break
                        pos += 2
                        cur = v2
                        row2 = pair_ref[v2]
                        if row2 is None:
                            row2 = self._pair_row(v2)
                row = ref_rows[cur]
                while pos < limit:
                    nxt = row[cls_b[pos]]
                    if nxt is None:
                        break
                    row = nxt
                    pos += 1
                cur = row[tail]
                since_check += pos - p0
                out.stepped_bytes += pos - p0
                if pos >= limit:
                    continue  # payload end or deadline-check window
                k = cls_b[pos]
                lb = loop_b[cur]
                if lb is not None and lb[k]:
                    continue  # outer loop engages the skip phase
                v = enc_rows[cur][k]
                if v < 0:
                    out.deopts += 1
                    cur, pos, done = self._lazy_phase(
                        payload, cls_b, pos, cur, out, add_event,
                        collect_stats, stats, sampler, stride,
                        single_match, all_rules_mask,
                        deadline_at, deadline_stride,
                    )
                    since_check += 1
                    if done:
                        break
                    continue
                pos += 1
                since_check += 1
                out.stepped_bytes += 1
                nxt_id = v & _ENC_MASK
                eid = v >> _ENC_SHIFT
                if eid:
                    add_event(eid, pos, pos)
                    out.matched_rules |= emissions[eid][1]
                    if single_match and out.matched_rules == all_rules_mask:
                        out.consumed = pos
                        return self._finish(out, nxt_id, "single_match")
                cur = nxt_id
                continue

            # exact-stats stepping (python-backend parity): one byte at
            # a time with the interpretive step's precise counters
            row = enc_rows[cur]
            stepped0 = pos
            deopt_edge = False
            while pos < n:
                k = cls_b[pos]
                v = row[k]
                if v < 0:
                    deopt_edge = True
                    break
                pos += 1
                nxt = v & _ENC_MASK
                eid = v >> _ENC_SHIFT
                if track:
                    if collect_stats:
                        stats.transitions_taken += self.taken_rows[cur][k]
                if eid:
                    add_event(eid, pos, pos)
                    out.matched_rules |= emissions[eid][1]
                    if single_match and out.matched_rules == all_rules_mask:
                        out.stepped_bytes += pos - stepped0
                        out.consumed = pos
                        return self._finish(out, nxt, "single_match")
                cur = nxt
                if track:
                    total, peak, width = cstats[cur]
                    if collect_stats:
                        stats.transitions_examined += self.examined_list[k]
                        stats.active_pair_total += total
                        if peak > stats.max_state_activation:
                            stats.max_state_activation = peak
                    if sampler is not None and pos % stride == 0:
                        sampler.observe(total, width, self.examined_list[k])
                since_check += 1
                if deadline_at is not None and since_check >= deadline_stride:
                    since_check = 0
                    if deadline_hit():
                        out.stepped_bytes += pos - stepped0
                        out.consumed = pos
                        return self._finish(out, cur, "deadline")
                lb = loop_b[cur]
                if lb is not None and pos < n and lb[cls_b[pos]]:
                    break
                row = enc_rows[cur]
            out.stepped_bytes += pos - stepped0
            if deopt_edge:
                out.deopts += 1
                cur, pos, done = self._lazy_phase(
                    payload, cls_b, pos, cur, out, add_event,
                    collect_stats, stats, sampler, stride,
                    single_match, all_rules_mask,
                    deadline_at, deadline_stride,
                )
                if done:
                    break

        if out.reason == "end":
            out.consumed = n
        out.final_config = cur
        return out

    def _finish(self, out: DenseScanOutcome, cur: int, reason: str) -> DenseScanOutcome:
        out.reason = reason
        out.final_config = cur
        return out

    def _pair_row(self, c: int) -> list:
        """Materialise config ``c``'s flat stride-2 row (lazy, cached).

        Pair entries whose *first* class is a skippable self-loop are
        masked to ``-1`` so pair bursts break at skip opportunities
        instead of stepping through them two bytes at a time.
        """
        arr = self.pair_np[c]
        if self.loop_b[c] is not None:
            arr = np.where(self.esc_np[c][:, None], arr, -1)
        row = arr.ravel().tolist()
        self._pair_ref[c] = row
        return row

    def _disable_skip(self, c: int) -> None:
        """Adaptive short-run fallback: config ``c`` keeps producing
        runs too short to amortise escape searches, so stop skipping it
        and restore its quiet self-loop edges to burst references (and
        re-materialise its pair row without the loop masking)."""
        self.loop_b[c] = None
        row = self.ref_rows[c]
        quiet_loops = (self.trans_np[c] == c) & (self.emit_np[c] == 0)
        for j in np.flatnonzero(quiet_loops).tolist():
            row[j] = row
        self._pair_ref[c] = None

    # -- skip-phase helpers ------------------------------------------------

    def _find_escape(
        self,
        payload: bytes,
        cls_np: np.ndarray,
        cur: int,
        pos: int,
        n: int,
        find_cache: dict,
    ) -> int:
        """First index ``>= pos`` whose class escapes ``cur``'s
        self-loop (``n`` if none): the literal prefilter
        (``bytes.find`` over a small escape-byte set, next-occurrence
        cached) or the vectorized block search."""
        esc = self.esc_bytes[cur]
        if esc is not None:
            j = n
            for b in esc:
                f = find_cache.get(b, -1)
                if f < pos and f != -2:
                    f = payload.find(b, pos)
                    find_cache[b] = f if f >= 0 else -2
                if f >= pos and f < j:
                    j = f
                    if j == pos:
                        break
            return j
        lut = self.esc_np[cur]
        j = pos
        block = ESCAPE_BLOCK
        while j < n:
            seg = lut[cls_np[j : j + block]]
            i = int(seg.argmax())
            if seg[i]:
                return j + i
            j += seg.size
            if block < (1 << 20):
                block *= 2
        return n

    def _extract_emissions(
        self,
        cls_np: np.ndarray,
        cur: int,
        a: int,
        b: int,
        out: DenseScanOutcome,
        add_event,
    ) -> None:
        """Vectorized emission extraction over a self-loop run [a, b)."""
        if a >= b:
            return
        em = self.emit_np[cur][cls_np[a:b]]
        hits = np.flatnonzero(em)
        if not hits.size:
            return
        eids = em[hits]
        acc = 0
        if hits.size == 1:
            p = a + int(hits[0]) + 1
            add_event(int(eids[0]), p, p)
            acc = self.emissions[int(eids[0])][1]
        else:
            brk = np.flatnonzero((np.diff(hits) != 1) | (np.diff(eids) != 0))
            starts = np.concatenate(([0], brk + 1))
            ends = np.concatenate((brk, [hits.size - 1]))
            emissions = self.emissions
            for s, e in zip(starts.tolist(), ends.tolist()):
                eid = int(eids[s])
                add_event(eid, a + int(hits[s]) + 1, a + int(hits[e]) + 1)
                acc |= emissions[eid][1]
        out.matched_rules |= acc

    def _emitting_run_scalar(
        self,
        cls_b: bytes,
        cur: int,
        a: int,
        b: int,
        out: DenseScanOutcome,
        add_event,
        collect_stats: bool,
        stats,
        sampler,
        stride: int,
        all_rules_mask: int,
    ) -> bool:
        """Single-match path over an emitting self-loop run [a, b):
        per-position processing so the early exit lands on the exact
        byte (and its break-position stats match the python backend).
        Returns True when every rule has now fired; ``out.consumed`` is
        then the break position."""
        emit_row = self.emit_np[cur]
        taken_row = self.taken_rows[cur]
        examined_list = self.examined_list
        total, peak, width = self.cache.config_stats[cur]
        emissions = self.emissions
        for i in range(a, b):
            k = cls_b[i]
            p = i + 1
            if collect_stats:
                stats.transitions_taken += taken_row[k]
            eid = int(emit_row[k])
            if eid:
                add_event(eid, p, p)
                out.matched_rules |= emissions[eid][1]
                if out.matched_rules == all_rules_mask:
                    out.consumed = p
                    return True
            if collect_stats:
                stats.transitions_examined += examined_list[k]
                stats.active_pair_total += total
                if peak > stats.max_state_activation:
                    stats.max_state_activation = peak
            if sampler is not None and p % stride == 0:
                sampler.observe(total, width, examined_list[k])
        return False

    # -- de-opt (interpreted) phase ---------------------------------------

    def _lazy_phase(
        self,
        payload: bytes,
        cls_b: bytes,
        pos: int,
        cur: int,
        out: DenseScanOutcome,
        add_event,
        collect_stats: bool,
        stats,
        sampler,
        stride: int,
        single_match: bool,
        all_rules_mask: int,
        deadline_at: Optional[float],
        deadline_stride: int,
    ) -> tuple[int, int, bool]:
        """Interpret lazily from index ``pos`` until the frontier is a
        compiled config again (or the payload ends).  Memoizes through
        the cache — de-opt traffic keeps warming it for re-promotion —
        but a flush (renumbering every id) aborts the scan with reason
        ``"invalidated"``.  Returns ``(config, index, scan_done)``.
        """
        cache = self.cache
        transitions = cache.transitions
        step = cache.step
        cstats = cache.config_stats
        examined_by_byte = cache.examined_by_byte
        flush_epoch = self.flush_epoch
        num_configs = self.num_configs
        n = len(payload)
        start = pos
        since_check = 0
        lru = cache.eviction == "lru"
        move_to_end = transitions.move_to_end if lru else None  # type: ignore[union-attr]
        while pos < n:
            byte = payload[pos]
            key = (cur << 8) | byte
            entry = transitions.get(key)
            if entry is None:
                entry = step(cur, byte)
                if cache.stats.flushes != flush_epoch:
                    out.deopt_bytes += pos - start
                    out.consumed = pos
                    out.reason = "invalidated"
                    return cur, pos, True
            elif lru:
                move_to_end(key)
            pos += 1
            cur = entry[0]
            if collect_stats:
                stats.transitions_taken += entry[3]
            if entry[2]:
                eid = self._intern_eid(entry[2], entry[1])
                add_event(eid, pos, pos)
                out.matched_rules |= entry[2]
                if single_match and out.matched_rules == all_rules_mask:
                    out.deopt_bytes += pos - start
                    out.consumed = pos
                    out.reason = "single_match"
                    return cur, pos, True
            if collect_stats:
                stats.transitions_examined += examined_by_byte[byte]
                total, peak, _ = cstats[cur]
                stats.active_pair_total += total
                if peak > stats.max_state_activation:
                    stats.max_state_activation = peak
            if sampler is not None and pos % stride == 0:
                total, _, width = cstats[cur]
                sampler.observe(total, width, examined_by_byte[byte])
            since_check += 1
            if deadline_at is not None and since_check >= deadline_stride:
                since_check = 0
                faultinject.fire("engine.step_delay")
                if time.perf_counter() > deadline_at:
                    out.deopt_bytes += pos - start
                    out.consumed = pos
                    out.reason = "deadline"
                    return cur, pos, True
            if cur < num_configs:
                break
        out.deopt_bytes += pos - start
        return cur, pos, False
