"""The iMFAnt engine: streaming MFSA matching with activation sets (§V).

iMFAnt extends iNFAnt's symbol-indexed evaluation with the activation
function: the state vector stores, for each active state, the set of
active rule identifiers reaching it (a bitmask).  One evaluated
transition ``src --c--> dst`` contributes

    ``(J(src) ∪ init(src)) ∩ bel(src→dst)``

to ``J(dst)``; a non-empty contribution is a performed move, and bits of
``J(dst) ∩ final(dst)`` are reported as matches (see
:mod:`repro.mfsa.activation` for the semantics derivation).

Two interchangeable implementations:

* ``backend="python"`` — dict-based sparse state vector with arbitrary-
  precision int masks; clear and allocation-light.
* ``backend="numpy"`` — dense ``(num_states, limbs)`` uint64 state vector
  with bulk gather/scatter per symbol; the CPU analogue of iNFAnt's
  data-parallel GPU formulation.

Both produce identical matches and (modulo wall time) identical work
counters; tests enforce the agreement.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

import repro.obs as obs
from repro.engine.counters import ExecutionStats, RunResult
from repro.engine.tables import MfsaTables, limbs_for
from repro.mfsa.model import Mfsa

_BACKENDS = ("python", "numpy")


class IMfantEngine:
    """Streaming matcher for one MFSA.

    ``single_match=True`` enables the DPI *single-match* reporting mode
    (Hyperscan's ``HS_FLAG_SINGLEMATCH``): each rule reports only its
    first match.  The python backend additionally stops scanning once
    every rule has fired (the numpy backend post-filters) — the cheap
    mode IDS rules that only need a verdict use.
    """

    def __init__(
        self,
        mfsa: Mfsa,
        backend: str = "python",
        pop_on_final: bool = False,
        single_match: bool = False,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {_BACKENDS}")
        self.backend = backend
        self.pop_on_final = pop_on_final
        self.single_match = single_match
        self.tables = MfsaTables.build(mfsa)
        if backend == "numpy":
            self.tables.ensure_arrays()

    # -- public API -------------------------------------------------------

    def run(self, data: bytes | str, collect_stats: bool = True) -> RunResult:
        payload = data.encode("latin-1") if isinstance(data, str) else data
        with obs.span(
            "imfant.run",
            backend=self.backend,
            states=self.tables.num_states,
            rules=self.tables.num_rules,
            bytes=len(payload),
        ) as sp:
            if self.backend == "numpy":
                result = self._run_numpy(payload, collect_stats)
            else:
                result = self._run_python(payload, collect_stats)
            if self.single_match:
                firsts: dict[int, int] = {}
                for rule, end in result.matches:
                    if rule not in firsts or end < firsts[rule]:
                        firsts[rule] = end
                result.matches = {(rule, end) for rule, end in firsts.items()}
                result.stats.match_count = len(result.matches)
            sp.set(matches=result.stats.match_count)
        return result

    # -- python backend ------------------------------------------------------

    def _run_python(self, payload: bytes, collect_stats: bool) -> RunResult:
        tables = self.tables
        by_symbol = tables.by_symbol
        init_mask = tables.init_mask
        final_mask = tables.final_mask
        slot_to_rule = tables.slot_to_rule
        pop_on_final = self.pop_on_final

        result = RunResult()
        stats = result.stats
        stats.mask_limbs = limbs_for(tables.num_rules)
        matches = result.matches
        for rule in tables.empty_matching_rules:
            matches.update((rule, end) for end in range(len(payload) + 1))

        all_rules_mask = (1 << tables.num_rules) - 1
        # ε-accepting rules are trivially matched already (offset 0)
        rule_to_slot = {rule: slot for slot, rule in enumerate(slot_to_rule)}
        matched_rules = 0
        for rule in tables.empty_matching_rules:
            matched_rules |= 1 << rule_to_slot[rule]
        consumed = 0
        sampler = obs.engine_sampler("imfant")
        stride = sampler.stride if sampler is not None else 0
        started = time.perf_counter()
        active: dict[int, int] = {}  # state -> activation bitmask J
        for position, byte in enumerate(payload, start=1):
            consumed = position
            enabled = by_symbol[byte]
            nxt: dict[int, int] = {}
            for src, dst, bel in enabled:
                mask = (active.get(src, 0) | init_mask[src]) & bel
                if mask:
                    nxt[dst] = nxt.get(dst, 0) | mask
                    if collect_stats:
                        stats.transitions_taken += 1
            active = nxt
            for state, mask in nxt.items():
                hit = mask & final_mask[state]
                if hit:
                    matched_rules |= hit
                    for slot in _bits(hit):
                        matches.add((slot_to_rule[slot], position))
                    if pop_on_final:
                        active[state] = mask & ~hit
            if self.single_match and matched_rules == all_rules_mask:
                break
            if collect_stats:
                stats.transitions_examined += len(enabled)
                total = 0
                peak = stats.max_state_activation
                for mask in active.values():
                    n = mask.bit_count()
                    total += n
                    if n > peak:
                        peak = n
                stats.active_pair_total += total
                stats.max_state_activation = peak
            if sampler is not None and position % stride == 0:
                pairs = 0
                width = 0
                for mask in active.values():
                    if mask:
                        width += 1
                        pairs += mask.bit_count()
                sampler.observe(pairs, width, len(enabled))
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = consumed if self.single_match else len(payload)
        stats.match_count = len(matches)
        return result

    # -- numpy backend ----------------------------------------------------------

    def _run_numpy(self, payload: bytes, collect_stats: bool) -> RunResult:
        tables = self.tables
        tables.ensure_arrays()
        limbs = tables.limbs
        src_tab, dst_tab, bel_tab = tables.np_src, tables.np_dst, tables.np_bel
        final_rows_tab = tables.np_final_rows
        init_arr = tables.np_init
        final_arr = tables.np_final
        slot_to_rule = tables.slot_to_rule
        pop_on_final = self.pop_on_final

        result = RunResult()
        stats = result.stats
        stats.mask_limbs = limbs
        matches = result.matches
        for rule in tables.empty_matching_rules:
            matches.update((rule, end) for end in range(len(payload) + 1))

        sampler = obs.engine_sampler("imfant")
        stride = sampler.stride if sampler is not None else 0
        started = time.perf_counter()
        sv = np.zeros((tables.num_states, limbs), dtype=np.uint64)
        scratch = np.zeros_like(sv)
        for position, byte in enumerate(payload, start=1):
            src = src_tab[byte]
            if src is None:
                if sv.any():
                    sv.fill(0)
                # keep the sampled positions (and the all-dead observation)
                # aligned with the python backend's empty-symbol path
                if sampler is not None and position % stride == 0:
                    sampler.observe(0, 0, 0)
                continue
            dst = dst_tab[byte]
            bel = bel_tab[byte]
            contrib = (sv[src] | init_arr[src]) & bel  # (k, limbs)
            scratch.fill(0)
            np.bitwise_or.at(scratch, dst, contrib)
            sv, scratch = scratch, sv
            rows = final_rows_tab[byte]
            if rows is not None:
                finals_dst = dst[rows]
                hits = sv[finals_dst] & final_arr[finals_dst]
                if hits.any():
                    hit_rows, hit_limbs = np.nonzero(hits)
                    for r, l in zip(hit_rows.tolist(), hit_limbs.tolist()):
                        word = int(hits[r, l])
                        for bit in _bits(word):
                            matches.add((slot_to_rule[64 * l + bit], position))
                        if pop_on_final:
                            # Idempotent per (state, limb): `word` is a
                            # snapshot, so repeated rows re-clear harmlessly.
                            sv[int(finals_dst[r]), l] &= ~np.uint64(word)
            if collect_stats:
                stats.transitions_examined += len(src)
                stats.transitions_taken += int(np.count_nonzero(contrib.any(axis=1)))
                popcounts = _popcount_rows(sv)
                stats.active_pair_total += int(popcounts.sum())
                peak = int(popcounts.max()) if popcounts.size else 0
                if peak > stats.max_state_activation:
                    stats.max_state_activation = peak
            if sampler is not None and position % stride == 0:
                popcounts = _popcount_rows(sv)
                sampler.observe(
                    int(popcounts.sum()),
                    int(np.count_nonzero(popcounts)),
                    len(src),
                )
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.match_count = len(matches)
        return result


def _bits(mask: int) -> Iterable[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _popcount_rows(sv: np.ndarray) -> np.ndarray:
    """Per-state popcount of a (states, limbs) uint64 activation matrix."""
    return np.bitwise_count(sv).sum(axis=1)
