"""The iMFAnt engine: streaming MFSA matching with activation sets (§V).

iMFAnt extends iNFAnt's symbol-indexed evaluation with the activation
function: the state vector stores, for each active state, the set of
active rule identifiers reaching it (a bitmask).  One evaluated
transition ``src --c--> dst`` contributes

    ``(J(src) ∪ init(src)) ∩ bel(src→dst)``

to ``J(dst)``; a non-empty contribution is a performed move, and bits of
``J(dst) ∩ final(dst)`` are reported as matches (see
:mod:`repro.mfsa.activation` for the semantics derivation).

Three interchangeable implementations:

* ``backend="python"`` — dict-based sparse state vector with arbitrary-
  precision int masks; clear and allocation-light.
* ``backend="numpy"`` — dense ``(num_states, limbs)`` uint64 state vector
  with bulk gather/scatter per symbol; the CPU analogue of iNFAnt's
  data-parallel GPU formulation.
* ``backend="lazy"`` — the python step memoized behind a bounded
  lazy-DFA configuration cache (:mod:`repro.engine.lazy`): steady-state
  scanning is one dict lookup per byte, falling back to the interpretive
  step on cache miss.
* ``backend="dense"`` — the lazy backend plus an auto-promoted dense
  compiled tier (:mod:`repro.engine.dense`): once the cache is warm and
  stable the interned config graph is compiled into byte-class-
  compressed numpy tables and buffers are scanned in bulk (self-loop
  run skipping, literal prefilter, optional 2-byte stride), de-opting
  to lazy interpretation wherever a scan escapes the compiled region.
* ``backend="counting"`` — the python step plus counter registers
  (:mod:`repro.engine.counting`) for the counting arcs of a
  :class:`~repro.counting.mfsa.CountingMfsa`: bounded ``{m,n}`` repeats
  run in O(1) amortised per byte instead of expanding into bound-many
  states.  On a plain :class:`~repro.mfsa.model.Mfsa` (zero registers)
  it degenerates to the python backend exactly — matches *and* work
  counters — which is how it joins the conformance matrix.

All produce identical matches and (modulo wall time) identical work
counters; tests enforce the agreement.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

import repro.obs as obs
from repro.counting.mfsa import CountingMfsa
from repro.engine.bitops import popcount_rows
from repro.engine.counters import ExecutionStats, RunResult
from repro.engine.counting import RegisterFile, RegisterSpec, build_register_specs
from repro.engine.dense import (
    DEFAULT_PROMOTE_AFTER,
    DENSE_MIN_HIT_RATE,
    DenseTier,
)
from repro.engine.lazy import DEFAULT_CACHE_SIZE, LazyConfigCache
from repro.engine.tables import MfsaTables, limbs_for
from repro.guard import faultinject
from repro.guard.budget import Budget, BudgetMeter, MemoryBudgetExceeded
from repro.guard.errors import (
    AllocationFailed,
    CountingBudgetExceeded,
    ScanDeadlineExceeded,
    UsageError,
)
from repro.mfsa.model import Mfsa

_BACKENDS = ("python", "numpy", "lazy", "dense", "counting")

#: Scan positions between deadline checks (one modulo per byte; the
#: perf_counter read happens only every stride-th position).
DEFAULT_DEADLINE_STRIDE = 4096


class IMfantEngine:
    """Streaming matcher for one MFSA.

    ``single_match=True`` enables the DPI *single-match* reporting mode
    (Hyperscan's ``HS_FLAG_SINGLEMATCH``): each rule reports only its
    first match, and every backend stops scanning once every rule has
    fired (``stats.chars_processed`` reports the bytes actually
    consumed) — the cheap mode IDS rules that only need a verdict use.

    ``backend="lazy"`` memoizes frontier transitions in a bounded
    :class:`~repro.engine.lazy.LazyConfigCache` owned by the engine; the
    cache stays warm across :meth:`run` calls.  ``lazy_cache_size`` and
    ``lazy_eviction`` configure its budget and eviction policy (see
    :mod:`repro.engine.lazy`); both are ignored by the other backends.

    ``backend="dense"`` starts out as the lazy backend and
    auto-promotes: once ``dense_promote_after`` bytes have been scanned
    lazily (0 = after the first non-empty run) *and* the last run's
    cache hit rate cleared :data:`~repro.engine.dense.DENSE_MIN_HIT_RATE`
    with no evictions, the config graph is compiled into a
    :class:`~repro.engine.dense.DenseTier` and subsequent runs scan in
    bulk (call :meth:`promote_dense` with ``force=True`` to skip the
    gates).  ``dense_budget`` charges table builds against modelled
    memory; a build that exceeds it (or fails allocation) quietly
    disables promotion — the engine keeps serving exact results lazily,
    which is also how the :data:`~repro.guard.degrade.BACKEND_LADDER`
    treats the tier.

    ``backend="counting"`` accepts a
    :class:`~repro.counting.mfsa.CountingMfsa` and runs its counting
    arcs through counter registers (:mod:`repro.engine.counting`)
    alongside the ordinary python step over the plain arcs.
    ``counting_budget`` charges one ``counting.registers`` allocation
    per register at engine construction; exceeding it raises
    :class:`~repro.guard.errors.AllocationFailed` with that stage, the
    signal the guard ladder demotes on.  A ``CountingMfsa`` handed to
    any *other* backend is first expanded (:meth:`CountingMfsa.expand`)
    into the equivalent plain automaton — the bridge that keeps the
    degradation ladder total, at the price of exactly the state growth
    counting avoids.  ``pop_on_final`` is rejected when counter
    registers exist (entries hold activation masks the pop cannot
    reach); it works as usual in the degenerate zero-register case.
    """

    def __init__(
        self,
        mfsa: "Mfsa | CountingMfsa",
        backend: str = "python",
        pop_on_final: bool = False,
        single_match: bool = False,
        lazy_cache_size: int = DEFAULT_CACHE_SIZE,
        lazy_eviction: str = "flush",
        scan_deadline: float | None = None,
        deadline_stride: int = DEFAULT_DEADLINE_STRIDE,
        dense_promote_after: int = DEFAULT_PROMOTE_AFTER,
        dense_stride: int = 1,
        dense_prefilter: bool = True,
        dense_budget: "Budget | None" = None,
        counting_budget: "Budget | None" = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise UsageError(f"unknown backend {backend!r}; choose from {_BACKENDS}")
        if scan_deadline is not None and scan_deadline <= 0:
            raise UsageError(f"scan_deadline must be positive (got {scan_deadline})")
        if deadline_stride < 1:
            raise UsageError(f"deadline_stride must be >= 1 (got {deadline_stride})")
        if dense_promote_after < 0:
            raise UsageError(
                f"dense_promote_after must be >= 0 (got {dense_promote_after})"
            )
        if dense_stride not in (1, 2):
            raise UsageError(f"dense_stride must be 1 or 2 (got {dense_stride})")
        self.backend = backend
        self.pop_on_final = pop_on_final
        self.single_match = single_match
        self.lazy_cache_size = lazy_cache_size
        self.lazy_eviction = lazy_eviction
        self.scan_deadline = scan_deadline
        self.deadline_stride = deadline_stride
        self.dense_promote_after = dense_promote_after
        self.dense_stride = dense_stride
        self.dense_prefilter = dense_prefilter
        self.dense_budget = dense_budget
        self.counting_budget = counting_budget
        if isinstance(mfsa, CountingMfsa):
            if backend == "counting":
                if pop_on_final and mfsa.counting:
                    raise UsageError(
                        "pop_on_final is not supported with counter registers"
                    )
                self.counting_mfsa: CountingMfsa | None = mfsa
                base = mfsa.plain_view()
            else:
                self.counting_mfsa = None
                base = mfsa.expand()
        else:
            self.counting_mfsa = None
            base = mfsa
        self.tables = MfsaTables.build(base)
        self.lazy_cache: LazyConfigCache | None = None
        self.dense_tier: DenseTier | None = None
        self._init_backend()

    def _init_backend(self) -> None:
        self.dense_tier = None
        self._dense_lazy_bytes = 0
        self._dense_disabled = False
        self._deopt_since_build = 0
        self._last_lazy_hit_rate = 0.0
        try:
            faultinject.fire("alloc", backend=self.backend)
            if self.backend == "numpy":
                self.tables.ensure_arrays()
            elif self.backend in ("lazy", "dense"):
                self.lazy_cache = LazyConfigCache(
                    self.tables,
                    pop_on_final=self.pop_on_final,
                    max_entries=self.lazy_cache_size,
                    eviction=self.lazy_eviction,
                )
            elif self.backend == "counting":
                self._register_specs = self._alloc_registers()
        except MemoryError as exc:
            raise AllocationFailed(
                f"backend {self.backend!r} allocation failed: {exc}"
            ) from exc

    def _alloc_registers(self) -> tuple[RegisterSpec, ...]:
        """Compile the counting arcs into register specs, charging each
        against ``counting_budget`` (and the ``counting.register_
        pressure`` fault point).  Failures surface as
        :class:`AllocationFailed` with stage ``counting.registers`` —
        the typed signal :class:`~repro.guard.degrade.GuardedMatcher`
        demotes counting → lazy on."""
        if self.counting_mfsa is None:
            return ()
        specs = build_register_specs(self.counting_mfsa)
        if specs:
            try:
                faultinject.fire(
                    "counting.register_pressure", registers=len(specs)
                )
                if self.counting_budget is not None:
                    self.counting_budget.start().charge_counting_registers(
                        len(specs)
                    )
            except (MemoryError, CountingBudgetExceeded) as exc:
                raise AllocationFailed(
                    f"counting-register allocation failed: {exc}",
                    stage="counting.registers",
                ) from exc
        return specs

    def fork(self) -> "IMfantEngine":
        """A new engine sharing this one's (immutable) tables but owning
        private mutable state — under ``backend="lazy"``/``"dense"``
        that is a fresh, cold cache (and no compiled tier yet).  The
        cheap way to give each worker thread its own engine without
        rebuilding the transition tables."""
        clone = IMfantEngine.__new__(IMfantEngine)
        clone.backend = self.backend
        clone.pop_on_final = self.pop_on_final
        clone.single_match = self.single_match
        clone.lazy_cache_size = self.lazy_cache_size
        clone.lazy_eviction = self.lazy_eviction
        clone.scan_deadline = self.scan_deadline
        clone.deadline_stride = self.deadline_stride
        clone.dense_promote_after = self.dense_promote_after
        clone.dense_stride = self.dense_stride
        clone.dense_prefilter = self.dense_prefilter
        clone.dense_budget = self.dense_budget
        clone.counting_budget = self.counting_budget
        clone.counting_mfsa = self.counting_mfsa
        clone.tables = self.tables
        clone.lazy_cache = None
        clone.dense_tier = None
        clone._init_backend()
        return clone

    def _deadline_at(self, started: float) -> float | None:
        return started + self.scan_deadline if self.scan_deadline is not None else None

    def _deadline_check(
        self, deadline_at: float, started: float, consumed: int, result: RunResult
    ) -> None:
        """Stride-gated scan-deadline check (also the step-delay fault point).

        On expiry the partial :class:`RunResult` is finalized with honest
        counters (matches so far, ``chars_processed`` = bytes actually
        consumed) and attached to the raised error — callers never get a
        silent truncation."""
        faultinject.fire("engine.step_delay")
        now = time.perf_counter()
        if now <= deadline_at:
            return
        stats = result.stats
        stats.wall_seconds = now - started
        stats.chars_processed = consumed
        stats.match_count = len(result.matches)
        raise ScanDeadlineExceeded(
            f"scan exceeded deadline of {self.scan_deadline:.3f}s "
            f"after {consumed} bytes",
            limit=self.scan_deadline,
            used=now - started,
            partial=result,
        )

    # -- public API -------------------------------------------------------

    def run(self, data: bytes | str, collect_stats: bool = True) -> RunResult:
        payload = data.encode("latin-1") if isinstance(data, str) else data
        with obs.span(
            "imfant.run",
            backend=self.backend,
            states=self.tables.num_states,
            rules=self.tables.num_rules,
            bytes=len(payload),
        ) as sp:
            if self.backend == "numpy":
                result = self._run_numpy(payload, collect_stats)
            elif self.backend == "lazy":
                result = self._run_lazy(payload, collect_stats)
            elif self.backend == "dense":
                result = self._run_dense(payload, collect_stats)
            elif self.backend == "counting":
                result = self._run_counting(payload, collect_stats)
            else:
                result = self._run_python(payload, collect_stats)
            if self.single_match:
                firsts: dict[int, int] = {}
                for rule, end in result.matches:
                    if rule not in firsts or end < firsts[rule]:
                        firsts[rule] = end
                result.matches = {(rule, end) for rule, end in firsts.items()}
                result.stats.match_count = len(result.matches)
            sp.set(matches=result.stats.match_count)
        return result

    # -- python backend ------------------------------------------------------

    def _run_python(self, payload: bytes, collect_stats: bool) -> RunResult:
        tables = self.tables
        by_symbol = tables.by_symbol
        init_mask = tables.init_mask
        final_mask = tables.final_mask
        slot_to_rule = tables.slot_to_rule
        pop_on_final = self.pop_on_final

        result = RunResult()
        stats = result.stats
        stats.mask_limbs = limbs_for(tables.num_rules)
        matches = result.matches
        for rule in tables.empty_matching_rules:
            matches.update((rule, end) for end in range(len(payload) + 1))

        all_rules_mask = (1 << tables.num_rules) - 1
        # ε-accepting rules are trivially matched already (offset 0)
        rule_to_slot = {rule: slot for slot, rule in enumerate(slot_to_rule)}
        matched_rules = 0
        for rule in tables.empty_matching_rules:
            matched_rules |= 1 << rule_to_slot[rule]
        consumed = 0
        sampler = obs.engine_sampler("imfant")
        stride = sampler.stride if sampler is not None else 0
        dstride = self.deadline_stride
        started = time.perf_counter()
        deadline_at = self._deadline_at(started)
        active: dict[int, int] = {}  # state -> activation bitmask J
        for position, byte in enumerate(payload, start=1):
            consumed = position
            if deadline_at is not None and position % dstride == 0:
                self._deadline_check(deadline_at, started, consumed, result)
            enabled = by_symbol[byte]
            nxt: dict[int, int] = {}
            for src, dst, bel in enabled:
                mask = (active.get(src, 0) | init_mask[src]) & bel
                if mask:
                    nxt[dst] = nxt.get(dst, 0) | mask
                    if collect_stats:
                        stats.transitions_taken += 1
            active = nxt
            for state, mask in nxt.items():
                hit = mask & final_mask[state]
                if hit:
                    matched_rules |= hit
                    for slot in _bits(hit):
                        matches.add((slot_to_rule[slot], position))
                    if pop_on_final:
                        active[state] = mask & ~hit
            if self.single_match and matched_rules == all_rules_mask:
                break
            if collect_stats:
                stats.transitions_examined += len(enabled)
                total = 0
                peak = stats.max_state_activation
                for mask in active.values():
                    n = mask.bit_count()
                    total += n
                    if n > peak:
                        peak = n
                stats.active_pair_total += total
                stats.max_state_activation = peak
            if sampler is not None and position % stride == 0:
                pairs = 0
                width = 0
                for mask in active.values():
                    if mask:
                        width += 1
                        pairs += mask.bit_count()
                sampler.observe(pairs, width, len(enabled))
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = consumed if self.single_match else len(payload)
        stats.match_count = len(matches)
        return result

    # -- counting backend --------------------------------------------------------

    def _run_counting(self, payload: bytes, collect_stats: bool) -> RunResult:
        """The python step plus counter registers for the counting arcs.

        Plain arcs run the exact ``_run_python`` activation step over
        the shared symbol tables; each counting arc is one register
        advanced per byte (O(1) amortised, see
        :mod:`repro.engine.counting`), its in-range activation union
        contributed to the destination like any other transition.  With
        zero registers the loop *is* the python backend — matches and
        work counters agree bit for bit, which the conformance matrix
        enforces.  With registers, ``transitions_examined`` charges one
        evaluation per register per byte and live entries join
        ``active_pair_total``, keeping the counters honest about the
        bookkeeping the backend trades state explosion for.
        """
        tables = self.tables
        by_symbol = tables.by_symbol
        init_mask = tables.init_mask
        final_mask = tables.final_mask
        slot_to_rule = tables.slot_to_rule
        pop_on_final = self.pop_on_final
        specs = self._register_specs
        num_registers = len(specs)
        regs = RegisterFile(specs) if num_registers else None

        result = RunResult()
        stats = result.stats
        stats.mask_limbs = limbs_for(tables.num_rules)
        matches = result.matches
        for rule in tables.empty_matching_rules:
            matches.update((rule, end) for end in range(len(payload) + 1))

        all_rules_mask = (1 << tables.num_rules) - 1
        rule_to_slot = {rule: slot for slot, rule in enumerate(slot_to_rule)}
        matched_rules = 0
        for rule in tables.empty_matching_rules:
            matched_rules |= 1 << rule_to_slot[rule]
        consumed = 0
        sampler = obs.engine_sampler("imfant")
        stride = sampler.stride if sampler is not None else 0
        dstride = self.deadline_stride
        started = time.perf_counter()
        deadline_at = self._deadline_at(started)
        active: dict[int, int] = {}  # state -> activation bitmask J
        for position, byte in enumerate(payload, start=1):
            consumed = position
            if deadline_at is not None and position % dstride == 0:
                self._deadline_check(deadline_at, started, consumed, result)
            enabled = by_symbol[byte]
            nxt: dict[int, int] = {}
            for src, dst, bel in enabled:
                mask = (active.get(src, 0) | init_mask[src]) & bel
                if mask:
                    nxt[dst] = nxt.get(dst, 0) | mask
                    if collect_stats:
                        stats.transitions_taken += 1
            if regs is not None:
                bit = 1 << byte
                step = regs.step
                for index, spec in enumerate(specs):
                    entry_mask = 0
                    if spec.label_mask & bit:
                        entry_mask = (
                            active.get(spec.src, 0) | init_mask[spec.src]
                        ) & spec.bel_mask
                    exit_mask = step(index, position, bit, entry_mask)
                    if exit_mask:
                        nxt[spec.dst] = nxt.get(spec.dst, 0) | exit_mask
                        if collect_stats:
                            stats.transitions_taken += 1
            active = nxt
            for state, mask in nxt.items():
                hit = mask & final_mask[state]
                if hit:
                    matched_rules |= hit
                    for slot in _bits(hit):
                        matches.add((slot_to_rule[slot], position))
                    if pop_on_final:
                        active[state] = mask & ~hit
            if self.single_match and matched_rules == all_rules_mask:
                break
            if collect_stats:
                stats.transitions_examined += len(enabled) + num_registers
                total = 0
                peak = stats.max_state_activation
                for mask in active.values():
                    n = mask.bit_count()
                    total += n
                    if n > peak:
                        peak = n
                if regs is not None:
                    total += regs.live_entries()
                stats.active_pair_total += total
                stats.max_state_activation = peak
            if sampler is not None and position % stride == 0:
                pairs = 0
                width = 0
                for mask in active.values():
                    if mask:
                        width += 1
                        pairs += mask.bit_count()
                sampler.observe(pairs, width, len(enabled) + num_registers)
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = consumed if self.single_match else len(payload)
        stats.match_count = len(matches)
        if regs is not None:
            registry = obs.get_registry()
            if registry is not None:
                registry.gauge(
                    "imfant_counting_registers",
                    help="counter registers held by the counting backend",
                ).set(num_registers)
                registry.counter(
                    "imfant_counting_entries_total",
                    help="activation entries pushed into counter registers",
                ).inc(regs.entries_total)
                registry.counter(
                    "imfant_counting_saturations_total",
                    help="entries saturated into unbounded-arc sticky masks",
                ).inc(regs.saturations_total)
                registry.gauge(
                    "imfant_counting_live_entries_peak",
                    help="peak live register entries observed in a scan",
                ).set(regs.peak_live)
        return result

    # -- lazy backend -----------------------------------------------------------

    def _run_lazy(self, payload: bytes, collect_stats: bool) -> RunResult:
        """The python step behind a lazy-DFA configuration cache.

        Steady state is one dict lookup per byte; misses fall back to
        :meth:`LazyConfigCache.step` (one interpretive step + memoize).
        Stats and sampled observations reproduce the python backend
        exactly — cached entries carry their step's work counters and
        interned configurations their activation statistics.
        """
        cache = self.lazy_cache
        assert cache is not None
        tables = self.tables
        slot_to_rule = tables.slot_to_rule
        transitions = cache.transitions
        step = cache.step
        config_stats = cache.config_stats
        examined_by_byte = cache.examined_by_byte
        lru = cache.eviction == "lru"
        move_to_end = transitions.move_to_end if lru else None  # type: ignore[union-attr]
        single_match = self.single_match

        result = RunResult()
        stats = result.stats
        stats.mask_limbs = limbs_for(tables.num_rules)
        matches = result.matches
        for rule in tables.empty_matching_rules:
            matches.update((rule, end) for end in range(len(payload) + 1))

        all_rules_mask = (1 << tables.num_rules) - 1
        rule_to_slot = {rule: slot for slot, rule in enumerate(slot_to_rule)}
        matched_rules = 0
        for rule in tables.empty_matching_rules:
            matched_rules |= 1 << rule_to_slot[rule]
        consumed = 0
        hits = misses = 0
        evictions_before = cache.stats.evictions
        flushes_before = cache.stats.flushes
        sampler = obs.engine_sampler("imfant")
        stride = sampler.stride if sampler is not None else 0
        dstride = self.deadline_stride
        started = time.perf_counter()
        deadline_at = self._deadline_at(started)
        cur = 0  # config id 0 == empty frontier
        for position, byte in enumerate(payload, start=1):
            consumed = position
            if deadline_at is not None and position % dstride == 0:
                self._deadline_check(deadline_at, started, consumed, result)
            key = (cur << 8) | byte
            entry = transitions.get(key)
            if entry is None:
                entry = step(cur, byte)
                misses += 1
            else:
                hits += 1
                if lru:
                    move_to_end(key)
            cur = entry[0]
            if collect_stats:
                # the python backend counts taken transitions *during*
                # the step, so the early-exit position still counts them
                stats.transitions_taken += entry[3]
            if entry[2]:
                matched_rules |= entry[2]
                for slot in entry[1]:
                    matches.add((slot_to_rule[slot], position))
            if single_match and matched_rules == all_rules_mask:
                break
            if collect_stats:
                stats.transitions_examined += examined_by_byte[byte]
                total, peak, _ = config_stats[cur]
                stats.active_pair_total += total
                if peak > stats.max_state_activation:
                    stats.max_state_activation = peak
            if sampler is not None and position % stride == 0:
                total, _, width = config_stats[cur]
                sampler.observe(total, width, examined_by_byte[byte])
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = consumed if single_match else len(payload)
        stats.match_count = len(matches)

        cache.stats.hits += hits
        cache.stats.misses += misses
        registry = obs.get_registry()
        if registry is not None:
            registry.counter(
                "imfant_lazy_cache_hits_total",
                help="lazy-backend transition-cache hits",
            ).inc(hits)
            registry.counter(
                "imfant_lazy_cache_misses_total",
                help="lazy-backend transition-cache misses (interpretive steps)",
            ).inc(misses)
            registry.counter(
                "imfant_lazy_cache_evictions_total",
                help="lazy-backend LRU entry evictions",
            ).inc(cache.stats.evictions - evictions_before)
            registry.counter(
                "imfant_lazy_cache_flushes_total",
                help="lazy-backend whole-cache flushes",
            ).inc(cache.stats.flushes - flushes_before)
            registry.gauge(
                "imfant_lazy_distinct_configs",
                help="distinct frontier configurations currently interned",
            ).set(cache.num_configs)
        return result

    # -- dense backend ----------------------------------------------------------

    def _dense_counter(self, registry, name: str, help_: str, delta: int) -> None:
        if registry is not None and delta:
            registry.counter(name, help=help_).inc(delta)

    def _run_dense(self, payload: bytes, collect_stats: bool) -> RunResult:
        """Lazy until promoted, then bulk scans over the compiled tier.

        A cache flush invalidates the tier (config ids renumber): the
        tier is dropped and the engine falls back to lazy scanning until
        it re-promotes.  De-opt bytes accumulate toward a rebuild once
        the cache has learned the escaped region (see
        :meth:`_maybe_rebuild`).
        """
        tier = self.dense_tier
        if tier is not None and not tier.valid():
            self.dense_tier = None
            self._dense_lazy_bytes = 0
            registry = obs.get_registry()
            self._dense_counter(
                registry,
                "imfant_dense_invalidations_total",
                "dense tiers dropped because the lazy cache flushed",
                1,
            )
            tier = None
        if tier is None:
            cache = self.lazy_cache
            assert cache is not None
            hits0, misses0 = cache.stats.hits, cache.stats.misses
            result = self._run_lazy(payload, collect_stats)
            dh = cache.stats.hits - hits0
            dm = cache.stats.misses - misses0
            self._last_lazy_hit_rate = dh / (dh + dm) if (dh + dm) else 1.0
            self._dense_lazy_bytes += len(payload)
            if not self._dense_disabled and self._dense_lazy_bytes > max(
                0, self.dense_promote_after
            ):
                self.promote_dense()
            return result
        return self._scan_dense(tier, payload, collect_stats)

    def promote_dense(self, force: bool = False) -> bool:
        """Compile the lazy cache into a dense tier now.

        Without ``force`` the warm-and-stable gates apply (last run's
        hit rate ≥ :data:`~repro.engine.dense.DENSE_MIN_HIT_RATE`, no
        evictions) and failures — including a
        :class:`~repro.guard.errors.MemoryBudgetExceeded` /
        :class:`~repro.guard.errors.AllocationFailed` build under
        ``dense_budget`` — disable auto-promotion and return ``False``
        (the engine keeps running lazily: the dense rung of the guard
        ladder degrades, never crashes).  With ``force`` the gates are
        skipped and build errors propagate.  Returns ``True`` when a
        tier was (re)built.
        """
        if self.backend != "dense":
            raise UsageError("promote_dense requires backend='dense'")
        cache = self.lazy_cache
        assert cache is not None
        if not force:
            if self._dense_disabled:
                return False
            if self._last_lazy_hit_rate < DENSE_MIN_HIT_RATE:
                return False
            if cache.stats.evictions:
                return False
        meter = (
            BudgetMeter(self.dense_budget) if self.dense_budget is not None else None
        )
        try:
            tier = DenseTier.build(
                cache,
                stride=self.dense_stride,
                prefilter=self.dense_prefilter,
                meter=meter,
            )
        except (AllocationFailed, MemoryBudgetExceeded):
            if force:
                raise
            self._dense_disabled = True
            self._dense_counter(
                obs.get_registry(),
                "imfant_dense_promotion_failures_total",
                "dense promotions abandoned (budget/allocation failure)",
                1,
            )
            return False
        self.dense_tier = tier
        self._dense_lazy_bytes = 0
        self._deopt_since_build = 0
        registry = obs.get_registry()
        if registry is not None:
            registry.counter(
                "imfant_dense_promotions_total",
                help="lazy caches promoted to dense compiled tiers",
            ).inc()
            registry.counter(
                "imfant_dense_build_seconds_total",
                help="wall seconds spent compiling dense tiers",
            ).inc(tier.build_seconds)
            registry.gauge(
                "imfant_dense_configs",
                help="configs compiled into the current dense tier",
            ).set(tier.num_configs)
        return True

    def _maybe_rebuild(self, tier: DenseTier) -> None:
        """Re-promote after the de-opted region stabilizes: enough
        de-opt bytes accumulated *and* the cache has interned configs
        the tier does not know.  The threshold scales with the table
        footprint so rebuild time stays small next to the de-opt time
        it can save (big graphs de-opt a little on every payload; a
        rebuild per payload would dominate the scan).  A failed rebuild
        keeps the old tier."""
        threshold = max(self.dense_promote_after, 4096, tier.nbytes // 8)
        if self._deopt_since_build < threshold:
            return
        cache = self.lazy_cache
        assert cache is not None
        self._deopt_since_build = 0
        if not tier.valid() or cache.num_configs <= tier.num_configs:
            return
        meter = (
            BudgetMeter(self.dense_budget) if self.dense_budget is not None else None
        )
        try:
            self.dense_tier = DenseTier.build(
                cache,
                stride=self.dense_stride,
                prefilter=self.dense_prefilter,
                meter=meter,
            )
        except (AllocationFailed, MemoryBudgetExceeded):
            return
        self._dense_counter(
            obs.get_registry(),
            "imfant_dense_rebuilds_total",
            "dense tiers rebuilt after de-opt churn",
            1,
        )

    def _scan_dense(
        self, tier: DenseTier, payload: bytes, collect_stats: bool
    ) -> RunResult:
        tables = self.tables
        slot_to_rule = tables.slot_to_rule
        single_match = self.single_match

        result = RunResult()
        stats = result.stats
        stats.mask_limbs = limbs_for(tables.num_rules)
        matches = result.matches
        for rule in tables.empty_matching_rules:
            matches.update((rule, end) for end in range(len(payload) + 1))

        all_rules_mask = (1 << tables.num_rules) - 1
        rule_to_slot = {rule: slot for slot, rule in enumerate(slot_to_rule)}
        matched_rules = 0
        for rule in tables.empty_matching_rules:
            matched_rules |= 1 << rule_to_slot[rule]
        sampler = obs.engine_sampler("imfant")
        started = time.perf_counter()
        deadline_at = self._deadline_at(started)

        outcome = tier.scan(
            payload,
            start_config=0,
            collect_stats=collect_stats,
            stats=stats,
            sampler=sampler,
            single_match=single_match,
            matched_rules=matched_rules,
            all_rules_mask=all_rules_mask,
            deadline_at=deadline_at,
            deadline_stride=self.deadline_stride,
        )
        if outcome.reason == "invalidated":
            # The cache flushed mid-scan: every config id (and the
            # tier) is stale.  Rerun the whole payload lazily — exact
            # and rare (only under cache pressure, where dense should
            # not have promoted in the first place).
            self.dense_tier = None
            self._dense_lazy_bytes = 0
            self._dense_counter(
                obs.get_registry(),
                "imfant_dense_invalidations_total",
                "dense tiers dropped because the lazy cache flushed",
                1,
            )
            return self._run_lazy(payload, collect_stats)

        emissions = tier.emissions
        for eid, lo, hi in outcome.events:
            slots, _mask = emissions[eid]
            if lo == hi:
                for slot in slots:
                    matches.add((slot_to_rule[slot], lo))
            else:
                for slot in slots:
                    rule = slot_to_rule[slot]
                    matches.update((rule, pos) for pos in range(lo, hi + 1))

        self._deopt_since_build += outcome.deopt_bytes
        registry = obs.get_registry()
        self._dense_counter(
            registry,
            "imfant_dense_deopts_total",
            "dense scans de-opting to lazy interpretation",
            outcome.deopts,
        )
        self._dense_counter(
            registry,
            "imfant_dense_deopt_bytes_total",
            "bytes interpreted lazily inside dense scans",
            outcome.deopt_bytes,
        )
        self._dense_counter(
            registry,
            "imfant_dense_prefilter_skipped_bytes_total",
            "bytes skipped by self-loop runs (prefilter + block search)",
            outcome.skipped_bytes,
        )

        if outcome.reason == "deadline":
            stats.match_count = len(matches)
            self._deadline_check(deadline_at, started, outcome.consumed, result)
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = (
            outcome.consumed if single_match else len(payload)
        )
        stats.match_count = len(matches)
        self._maybe_rebuild(tier)
        return result

    # -- numpy backend ----------------------------------------------------------

    def _run_numpy(self, payload: bytes, collect_stats: bool) -> RunResult:
        tables = self.tables
        tables.ensure_arrays()
        limbs = tables.limbs
        src_tab, dst_tab, bel_tab = tables.np_src, tables.np_dst, tables.np_bel
        final_rows_tab = tables.np_final_rows
        init_arr = tables.np_init
        final_arr = tables.np_final
        slot_to_rule = tables.slot_to_rule
        pop_on_final = self.pop_on_final

        result = RunResult()
        stats = result.stats
        stats.mask_limbs = limbs
        matches = result.matches
        for rule in tables.empty_matching_rules:
            matches.update((rule, end) for end in range(len(payload) + 1))

        all_rules_mask = (1 << tables.num_rules) - 1
        rule_to_slot = {rule: slot for slot, rule in enumerate(slot_to_rule)}
        matched_rules = 0
        for rule in tables.empty_matching_rules:
            matched_rules |= 1 << rule_to_slot[rule]
        single_match = self.single_match
        consumed = 0
        sampler = obs.engine_sampler("imfant")
        stride = sampler.stride if sampler is not None else 0
        dstride = self.deadline_stride
        started = time.perf_counter()
        deadline_at = self._deadline_at(started)
        sv = np.zeros((tables.num_states, limbs), dtype=np.uint64)
        scratch = np.zeros_like(sv)
        for position, byte in enumerate(payload, start=1):
            consumed = position
            if deadline_at is not None and position % dstride == 0:
                self._deadline_check(deadline_at, started, consumed, result)
            src = src_tab[byte]
            if src is None:
                if single_match and matched_rules == all_rules_mask:
                    break
                if sv.any():
                    sv.fill(0)
                # keep the sampled positions (and the all-dead observation)
                # aligned with the python backend's empty-symbol path
                if sampler is not None and position % stride == 0:
                    sampler.observe(0, 0, 0)
                continue
            dst = dst_tab[byte]
            bel = bel_tab[byte]
            contrib = (sv[src] | init_arr[src]) & bel  # (k, limbs)
            scratch.fill(0)
            np.bitwise_or.at(scratch, dst, contrib)
            sv, scratch = scratch, sv
            if collect_stats:
                # counted before the early-exit check, matching the
                # python backend's in-step accounting
                stats.transitions_taken += int(np.count_nonzero(contrib.any(axis=1)))
            rows = final_rows_tab[byte]
            if rows is not None:
                finals_dst = dst[rows]
                hits = sv[finals_dst] & final_arr[finals_dst]
                if hits.any():
                    hit_rows, hit_limbs = np.nonzero(hits)
                    for r, l in zip(hit_rows.tolist(), hit_limbs.tolist()):
                        word = int(hits[r, l])
                        matched_rules |= word << (64 * l)
                        for bit in _bits(word):
                            matches.add((slot_to_rule[64 * l + bit], position))
                        if pop_on_final:
                            # Idempotent per (state, limb): `word` is a
                            # snapshot, so repeated rows re-clear harmlessly.
                            sv[int(finals_dst[r]), l] &= ~np.uint64(word)
            if single_match and matched_rules == all_rules_mask:
                break
            if collect_stats:
                stats.transitions_examined += len(src)
                popcounts = popcount_rows(sv)
                stats.active_pair_total += int(popcounts.sum())
                peak = int(popcounts.max()) if popcounts.size else 0
                if peak > stats.max_state_activation:
                    stats.max_state_activation = peak
            if sampler is not None and position % stride == 0:
                popcounts = popcount_rows(sv)
                sampler.observe(
                    int(popcounts.sum()),
                    int(np.count_nonzero(popcounts)),
                    len(src),
                )
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = consumed if single_match else len(payload)
        stats.match_count = len(matches)
        return result


def _bits(mask: int) -> Iterable[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
