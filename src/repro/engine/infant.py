"""The baseline iNFAnt engine: streaming NFA matching over one FSA.

The algorithm (Cascarano et al., 2010, as summarised in paper §V): for
each input character, every transition the character enables is
evaluated; a move is performed when its source state is active *or
initial* (new match attempts start at every offset); destination states
form the next state vector; reaching a final state reports a match.

Two backends:

* ``backend="python"`` — the state vector is a Python set of states;
  simple and fast on sparse activity.
* ``backend="numpy"`` — the GPU formulation's data layout on the CPU:
  the state vector is a *bit vector* (uint64 limbs over states) and each
  symbol's transition list is applied as a bulk gather/scatter, exactly
  iNFAnt's "all transitions enabled by the symbol in parallel" step.

Work counters feed the cost model either way.
"""

from __future__ import annotations

import time

import numpy as np

import repro.obs as obs
from repro.automata.fsa import Fsa
from repro.engine.bitops import popcount_total
from repro.engine.counters import ExecutionStats, RunResult
from repro.engine.tables import FsaTables

_BACKENDS = ("python", "numpy")


class INfantEngine:
    """Single-FSA streaming matcher with iNFAnt's evaluation strategy."""

    def __init__(self, fsa: Fsa, rule_id: int = 0, backend: str = "python") -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {_BACKENDS}")
        self.rule_id = rule_id
        self.backend = backend
        self.tables = FsaTables.build(fsa)
        self._np: _NumpyTables | None = _NumpyTables(self.tables) if backend == "numpy" else None

    def run(self, data: bytes | str, collect_stats: bool = True) -> RunResult:
        """Scan the stream; returns ``(rule_id, end_offset)`` matches.

        ``collect_stats`` controls the per-character counter updates (a
        few percent overhead; benchmarks that only need timing switch it
        off).
        """
        payload = data.encode("latin-1") if isinstance(data, str) else data
        with obs.span(
            "infant.run",
            backend=self.backend,
            rule=self.rule_id,
            states=self.tables.num_states,
            bytes=len(payload),
        ) as sp:
            result = self._run(payload, collect_stats)
            sp.set(matches=result.stats.match_count)
        return result

    def _run(self, payload: bytes, collect_stats: bool) -> RunResult:
        if self._np is not None:
            return self._run_numpy(payload, collect_stats)
        tables = self.tables
        by_symbol = tables.by_symbol
        finals = tables.finals
        initial = tables.initial

        result = RunResult()
        stats = result.stats
        matches = result.matches
        if tables.accepts_empty:
            matches.update((self.rule_id, end) for end in range(len(payload) + 1))

        sampler = obs.engine_sampler("infant")
        stride = sampler.stride if sampler is not None else 0
        started = time.perf_counter()
        active: set[int] = set()
        for position, byte in enumerate(payload, start=1):
            enabled = by_symbol[byte]
            nxt: set[int] = set()
            for src, dst in enabled:
                if src == initial or src in active:
                    nxt.add(dst)
            active = nxt
            if active & finals:
                matches.add((self.rule_id, position))
            if collect_stats:
                stats.transitions_examined += len(enabled)
                stats.active_pair_total += len(active)
                if len(active) > stats.max_state_activation:
                    stats.max_state_activation = len(active)
            if sampler is not None and position % stride == 0:
                # one rule: active pairs == frontier width == |active|
                sampler.observe(len(active), len(active), len(enabled))
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.match_count = len(matches)
        return result

    # -- numpy (bit-vector) backend -----------------------------------------

    def _run_numpy(self, payload: bytes, collect_stats: bool) -> RunResult:
        assert self._np is not None
        np_tables = self._np
        result = RunResult()
        stats = result.stats
        matches = result.matches
        if self.tables.accepts_empty:
            matches.update((self.rule_id, end) for end in range(len(payload) + 1))

        limbs = np_tables.limbs
        sampler = obs.engine_sampler("infant")
        stride = sampler.stride if sampler is not None else 0
        started = time.perf_counter()
        sv = np.zeros(limbs, dtype=np.uint64)
        scratch = np.zeros(limbs, dtype=np.uint64)
        init_limb, init_bit = divmod(self.tables.initial, 64)
        init_mask = np.uint64(1 << init_bit)
        finals_bits = np_tables.finals_bits
        for position, byte in enumerate(payload, start=1):
            src_limb = np_tables.src_limb[byte]
            if src_limb is None:
                if sv.any():
                    sv.fill(0)
                if sampler is not None and position % stride == 0:
                    sampler.observe(0, 0, 0)
                continue
            sv[init_limb] |= init_mask  # new attempts start every offset
            # gather: which evaluated transitions have an active source?
            active = (sv[src_limb] >> np_tables.src_bit[byte]) & np.uint64(1)
            scratch.fill(0)
            contribution = active << np_tables.dst_bit[byte]
            np.bitwise_or.at(scratch, np_tables.dst_limb[byte], contribution)
            sv, scratch = scratch, sv
            if (sv & finals_bits).any():
                matches.add((self.rule_id, position))
            if collect_stats:
                stats.transitions_examined += len(src_limb)
                stats.transitions_taken += int(active.sum())
                popcount = popcount_total(sv)
                stats.active_pair_total += popcount
                if popcount > stats.max_state_activation:
                    stats.max_state_activation = popcount
            if sampler is not None and position % stride == 0:
                popcount = popcount_total(sv)
                sampler.observe(popcount, popcount, len(src_limb))
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.match_count = len(matches)
        return result


class _NumpyTables:
    """Per-symbol transition arrays in bit-vector coordinates."""

    def __init__(self, tables: FsaTables) -> None:
        self.limbs = max(1, (tables.num_states + 63) // 64)
        self.src_limb: list[np.ndarray | None] = []
        self.src_bit: list[np.ndarray | None] = []
        self.dst_limb: list[np.ndarray | None] = []
        self.dst_bit: list[np.ndarray | None] = []
        for pairs in tables.by_symbol:
            if not pairs:
                self.src_limb.append(None)
                self.src_bit.append(None)
                self.dst_limb.append(None)
                self.dst_bit.append(None)
                continue
            src = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
            dst = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
            self.src_limb.append(src // 64)
            self.src_bit.append((src % 64).astype(np.uint64))
            self.dst_limb.append(dst // 64)
            self.dst_bit.append((dst % 64).astype(np.uint64))
        finals = np.zeros(self.limbs, dtype=np.uint64)
        for state in tables.finals:
            finals[state // 64] |= np.uint64(1 << (state % 64))
        self.finals_bits = finals
