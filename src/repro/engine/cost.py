"""Work-based timing model for automata execution.

The paper's throughput and thread-scaling experiments (Figs. 9–10) time a
C++/-O3 engine on real hardware.  Pure Python cannot reproduce absolute
numbers, and CPython threads cannot reproduce 128-thread scaling, so the
scaling figures are driven by a deterministic *work model* calibrated on
the engines' measured counters (DESIGN.md §3, substitution 3):

``time(run) = c_char·chars + c_trans·transitions_examined
            + c_active·active_pair_total·mask_limbs``

* ``c_char`` — fixed per-symbol dispatch cost of one automaton run.  This
  term is what the MFSA amortises: a ruleset split over K automata pays
  it K times per input symbol.
* ``c_trans`` — per examined transition (memory-bandwidth term).
* ``c_active`` — per active (state, rule) pair per symbol, scaled by the
  activation-mask word count (⌈rules-per-MFSA/64⌉): every activation
  update touches that many words.  This is the superlinear activation-
  management overhead that makes huge-active-set datasets (paper: PRO,
  DS9) prefer intermediate merging factors at paper scale (the effect is
  neutral below 64 rules per MFSA, where masks fit one word).

The default coefficients are calibrated against the interpretive Python
engine's measured wall-clock ratios; the *shape* of the figures is
insensitive to moderate changes (the calibration ablation bench sweeps
them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.counters import ExecutionStats


@dataclass(frozen=True)
class CostModel:
    """Linear work model over execution counters (arbitrary time units)."""

    c_char: float = 2.0
    c_trans: float = 0.3
    c_active: float = 0.2
    #: per transition where the simultaneous-run (entry-pair) half of an
    #: SFA mapping scan is live — the extra masked-OR width a mapping
    #: pays over a plain scan of the same chunk (repro.engine.sfa; the
    #: ``linear_ops`` counter).  Same order as ``c_trans``: both are one
    #: AND/OR on a (wider) integer.
    c_linear: float = 0.3

    def run_cost(self, stats: ExecutionStats) -> float:
        """Modelled execution time of one automaton run."""
        return (
            self.c_char * stats.chars_processed
            + self.c_trans * stats.transitions_examined
            + self.c_active * stats.active_pair_total * stats.mask_limbs
        )

    def mapping_run_cost(self, stats: ExecutionStats, linear_ops: int) -> float:
        """Modelled time of one SFA mapping scan (repro.engine.sfa):
        the const column costs exactly a plain run of the chunk; the
        entry-pair columns add ``c_linear`` per live linear transition.
        The ratio ``mapping_run_cost / run_cost`` is the mapping
        overhead κ — data-parallel mapping scans beat a sequential scan
        once the thread count exceeds κ (the crossover
        ``pipeline.autotune.choose_scan_strategy`` measures).
        """
        return self.run_cost(stats) + self.c_linear * linear_ops

    def total_cost(self, runs: list[ExecutionStats]) -> float:
        """Sequential (single-thread) time for a list of runs."""
        return sum(self.run_cost(stats) for stats in runs)


def throughput(num_rules: int, data_size: int, total_time: float) -> float:
    """The paper's throughput metric: ``#RE_exe · D_size / Exe_time_tot``.

    For a set of MFSAs this is ``#MFSA · M · D_size / Σ time`` (§VI-C);
    the unit is rule-bytes per time unit.
    """
    if total_time <= 0:
        raise ValueError("total_time must be positive")
    return num_rules * data_size / total_time
