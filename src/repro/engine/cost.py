"""Work-based timing model for automata execution.

The paper's throughput and thread-scaling experiments (Figs. 9–10) time a
C++/-O3 engine on real hardware.  Pure Python cannot reproduce absolute
numbers, and CPython threads cannot reproduce 128-thread scaling, so the
scaling figures are driven by a deterministic *work model* calibrated on
the engines' measured counters (DESIGN.md §3, substitution 3):

``time(run) = c_char·chars + c_trans·transitions_examined
            + c_active·active_pair_total·mask_limbs``

* ``c_char`` — fixed per-symbol dispatch cost of one automaton run.  This
  term is what the MFSA amortises: a ruleset split over K automata pays
  it K times per input symbol.
* ``c_trans`` — per examined transition (memory-bandwidth term).
* ``c_active`` — per active (state, rule) pair per symbol, scaled by the
  activation-mask word count (⌈rules-per-MFSA/64⌉): every activation
  update touches that many words.  This is the superlinear activation-
  management overhead that makes huge-active-set datasets (paper: PRO,
  DS9) prefer intermediate merging factors at paper scale (the effect is
  neutral below 64 rules per MFSA, where masks fit one word).

The default coefficients are calibrated against the interpretive Python
engine's measured wall-clock ratios; the *shape* of the figures is
insensitive to moderate changes (the calibration ablation bench sweeps
them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.counters import ExecutionStats


@dataclass(frozen=True)
class CostModel:
    """Linear work model over execution counters (arbitrary time units)."""

    c_char: float = 2.0
    c_trans: float = 0.3
    c_active: float = 0.2
    #: per transition where the simultaneous-run (entry-pair) half of an
    #: SFA mapping scan is live — the extra masked-OR width a mapping
    #: pays over a plain scan of the same chunk (repro.engine.sfa; the
    #: ``linear_ops`` counter).  Same order as ``c_trans``: both are one
    #: AND/OR on a (wider) integer.
    c_linear: float = 0.3
    #: per char resolved by a warm lazy-DFA cache hit: one memo probe
    #: replaces the whole interpretive per-char body.  Misses pay the
    #: interpretive price but amortise to zero on stable config graphs.
    c_lazy: float = 1.5
    #: per char stepped through a compiled dense-tier row (one table
    #: index per byte — the cheapest per-byte path of any backend; run
    #: skipping and the literal prefilter only push it lower).
    c_dense: float = 0.4
    #: fixed per-char dispatch cost of the numpy backend.  Profiling
    #: shows ~5 vectorised kernel launches per input byte (scatter-OR,
    #: reduce, any-check, clear) whose launch overhead is paid whatever
    #: the frontier width — this fixed term, not the per-transition
    #: work, is why numpy measures *slower* than interpretive python on
    #: sparse-activation rulesets (the dotstar regression in
    #: BENCH_lazy.json).
    c_numpy_char: float = 16.0
    #: per examined transition under numpy — vectorised, so near memory
    #: bandwidth.  With the default coefficients numpy only models
    #: cheaper than python above ≈56 examined transitions per char,
    #: matching the measured near-break-even at ~74 (range_rules).
    c_numpy_trans: float = 0.05
    #: fixed per-char dispatch of the counting backend: the interpretive
    #: python body plus the counter-register advance.  The register work
    #: itself rides in the transition term (counting scans charge one
    #: examined transition per register per char), so this constant only
    #: carries the slightly heavier per-byte dispatch.  What the model
    #: cannot show directly — and the bench measures — is the
    #: *alternative* cost: the expanded automaton pays c_trans over a
    #: transition count linear in the repeat bound.
    c_counting_char: float = 2.2

    def run_cost(self, stats: ExecutionStats) -> float:
        """Modelled execution time of one automaton run."""
        return (
            self.c_char * stats.chars_processed
            + self.c_trans * stats.transitions_examined
            + self.c_active * stats.active_pair_total * stats.mask_limbs
        )

    def mapping_run_cost(self, stats: ExecutionStats, linear_ops: int) -> float:
        """Modelled time of one SFA mapping scan (repro.engine.sfa):
        the const column costs exactly a plain run of the chunk; the
        entry-pair columns add ``c_linear`` per live linear transition.
        The ratio ``mapping_run_cost / run_cost`` is the mapping
        overhead κ — data-parallel mapping scans beat a sequential scan
        once the thread count exceeds κ (the crossover
        ``pipeline.autotune.choose_scan_strategy`` measures).
        """
        return self.run_cost(stats) + self.c_linear * linear_ops

    def backend_run_cost(self, stats: ExecutionStats, backend: str) -> float:
        """Modelled time of one run under a given execution backend.

        The counters are backend-invariant (every backend examines the
        same transitions); what differs is the machinery each backend
        pays to examine them:

        * ``python`` — the full interpretive model (:meth:`run_cost`).
        * ``numpy`` — a large fixed per-char dispatch term plus a tiny
          vectorised per-transition term: cheap only for very dense
          transition traffic (see ``c_numpy_char``).
        * ``lazy`` — one memo probe per char once the config graph is
          warm (the steady state the autotuner cares about).
        * ``dense`` — one compiled-table index per char.

        This is the *prior* used to rank backends without measurement;
        :func:`repro.pipeline.autotune.choose_backend` measures the
        real crossover and treats this model as the auditable
        prediction column.
        """
        if backend == "python":
            return self.run_cost(stats)
        if backend == "numpy":
            return (
                self.c_numpy_char * stats.chars_processed
                + self.c_numpy_trans * stats.transitions_examined
            )
        if backend == "lazy":
            return self.c_lazy * stats.chars_processed
        if backend == "dense":
            return self.c_dense * stats.chars_processed
        if backend == "counting":
            return (
                self.c_counting_char * stats.chars_processed
                + self.c_trans * stats.transitions_examined
                + self.c_active * stats.active_pair_total * stats.mask_limbs
            )
        raise ValueError(f"unknown backend {backend!r}")

    def total_cost(self, runs: list[ExecutionStats]) -> float:
        """Sequential (single-thread) time for a list of runs."""
        return sum(self.run_cost(stats) for stats in runs)


def throughput(num_rules: int, data_size: int, total_time: float) -> float:
    """The paper's throughput metric: ``#RE_exe · D_size / Exe_time_tot``.

    For a set of MFSAs this is ``#MFSA · M · D_size / Σ time`` (§VI-C);
    the unit is rule-bytes per time unit.
    """
    if total_time <= 0:
        raise ValueError("total_time must be positive")
    return num_rules * data_size / total_time
