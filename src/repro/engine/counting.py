"""Counter registers: the runtime state behind ``backend="counting"``.

A counting arc ``src ==[L]{low,high}==> dst`` of a
:class:`~repro.counting.mfsa.CountingMfsa` becomes one *register*: a
compile-time :class:`RegisterSpec` (shared, immutable) plus per-run
mutable counter state in a :class:`RegisterFile`.  Counts are never
stored explicitly — an entry records the offset at which an activation
mask entered the arc, and its count is ``position - entry_offset``, so
every live entry "increments" for free as the scan advances (the
counting-set trick of Turoňová et al., which
:mod:`repro.counting.engine` implements for single patterns).

The per-register state is split by maturity so each byte is O(1)
amortised even when thousands of entries are live:

* ``pending`` — a deque of ``(entry_offset, mask)`` with count < low,
  ordered by offset; at most one entry matures off the left per byte.
* the *window* — entries with low <= count <= high, kept as the classic
  two-stack sliding-window OR: ``back`` receives maturing entries (with
  ``back_or`` the running OR of their masks) and ``front`` holds
  ``(entry_offset, mask, cum)`` triples where ``cum`` ORs the element
  with everything pushed after it, so the window's total OR is
  ``front[-1].cum | back_or`` and expiring the oldest entry is a pop.
  Entries move ``back`` → ``front`` at most once in their lifetime.
* ``saturated`` — for unbounded arcs (``high=None``) matured masks
  accumulate into a sticky OR instead of a window; one non-matching
  byte resets it (and everything else).

The arc's per-byte contribution to the destination state is
``window_or | saturated`` — exactly the union of activation masks whose
counts are in range, which is what the expanded automaton's exit arcs
would deliver.  The differential suite pins this equivalence.
"""

from __future__ import annotations

from collections import deque

from repro.counting.mfsa import CountingMfsa

__all__ = ["RegisterSpec", "RegisterFile", "build_register_specs"]


class RegisterSpec:
    """One counting arc, compiled to slot-mask form (immutable, shared
    across :meth:`~repro.engine.imfant.IMfantEngine.fork` clones)."""

    __slots__ = ("src", "dst", "low", "high", "bel_mask", "label_mask")

    def __init__(
        self,
        src: int,
        dst: int,
        low: int,
        high: int | None,
        bel_mask: int,
        label_mask: int,
    ) -> None:
        self.src = src
        self.dst = dst
        self.low = low
        self.high = high
        self.bel_mask = bel_mask
        self.label_mask = label_mask

    def __repr__(self) -> str:
        bound = f"{{{self.low},{'' if self.high is None else self.high}}}"
        return f"RegisterSpec({self.src}=>{self.dst} {bound})"


def build_register_specs(cmfsa: CountingMfsa) -> tuple[RegisterSpec, ...]:
    """Compile the counting arcs into engine-ready register specs
    (belonging sets and labels become slot/byte bitmasks, mirroring
    what :class:`~repro.engine.tables.MfsaTables` does for plain arcs)."""
    slots = cmfsa.slot_of()
    specs = []
    for arc in cmfsa.counting:
        bel_mask = 0
        for rule in arc.bel:
            bel_mask |= 1 << slots[rule]
        specs.append(
            RegisterSpec(arc.src, arc.dst, arc.low, arc.high, bel_mask, arc.label.mask)
        )
    return tuple(specs)


class RegisterFile:
    """Mutable per-run counter state for all registers (see module doc).

    Engines instantiate one per :meth:`run` call, so a shared engine
    stays re-entrant the way the python backend's frontier dict does.
    ``entries_total`` / ``saturations_total`` / ``peak_live`` feed the
    ``imfant_counting_*`` obs metrics after the scan.
    """

    __slots__ = (
        "specs",
        "pending",
        "front",
        "back",
        "back_or",
        "saturated",
        "entries_total",
        "saturations_total",
        "peak_live",
    )

    def __init__(self, specs: tuple[RegisterSpec, ...]) -> None:
        n = len(specs)
        self.specs = specs
        self.pending: list[deque] = [deque() for _ in range(n)]
        self.front: list[list] = [[] for _ in range(n)]
        self.back: list[list] = [[] for _ in range(n)]
        self.back_or = [0] * n
        self.saturated = [0] * n
        self.entries_total = 0
        self.saturations_total = 0
        self.peak_live = 0

    def step(self, index: int, position: int, bit: int, entry_mask: int) -> int:
        """Advance register ``index`` over the byte at ``position``
        (1-based; ``bit`` is ``1 << byte``) and return the arc's
        contribution to its destination state.

        ``entry_mask`` is the caller-computed activation entering the
        arc this byte — ``(J(src) | init(src)) & bel`` — already zero
        when the label does not cover the byte.
        """
        spec = self.specs[index]
        pending = self.pending[index]
        front = self.front[index]
        back = self.back[index]
        if not (spec.label_mask & bit):
            # A non-matching byte breaks every run through this arc:
            # all counts die at once.
            if pending:
                pending.clear()
            if front:
                front.clear()
            if back:
                back.clear()
            self.back_or[index] = 0
            self.saturated[index] = 0
            return 0
        low = spec.low
        high = spec.high
        if high is not None:
            # Expire window entries whose count passed high.  Entry
            # offsets are distinct, so at most one leaves per byte; the
            # loops stay for safety and amortise to O(1).
            while True:
                if front:
                    if position - front[-1][0] > high:
                        front.pop()
                        continue
                    break
                if back and position - back[0][0] > high:
                    cum = 0
                    for start, mask in reversed(back):
                        cum |= mask
                        front.append((start, mask, cum))
                    back.clear()
                    self.back_or[index] = 0
                    front.pop()
                    continue
                break
        if entry_mask:
            pending.append((position - 1, entry_mask))
            self.entries_total += 1
        # Mature pending entries whose count reached low (a just-pushed
        # entry matures immediately when low == 1).  low <= high, so a
        # maturing entry never also expires this byte.
        if high is None:
            saturated = self.saturated[index]
            while pending and position - pending[0][0] >= low:
                saturated |= pending.popleft()[1]
                self.saturations_total += 1
            self.saturated[index] = saturated
            return saturated
        while pending and position - pending[0][0] >= low:
            start, mask = pending.popleft()
            back.append((start, mask))
            self.back_or[index] |= mask
        window_or = self.back_or[index]
        if front:
            window_or |= front[-1][2]
        return window_or | self.saturated[index]

    def live_entries(self) -> int:
        """Entries currently held across all registers (stats/obs hook;
        also tracks the high-water mark in ``peak_live``)."""
        live = 0
        for index in range(len(self.specs)):
            live += len(self.pending[index]) + len(self.front[index]) + len(self.back[index])
        if live > self.peak_live:
            self.peak_live = live
        return live
