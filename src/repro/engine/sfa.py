"""SFA-style composable chunk mappings: exact data-parallel scanning.

Overlap/stitch chunking (the historical contract of
:mod:`repro.engine.chunkscan` and :mod:`repro.serve.shards`) prepends
``max_width − 1`` context bytes to every chunk — sound only when every
rule's match width is bounded, and silently *sequential* otherwise
(``.*``, unbounded repeats).  Simultaneous Finite Automata (Sin'ya &
Matsuzaki, PAPERS.md) give the principled replacement: scan each chunk
from **every possible entry state at once**, producing a state-to-state
mapping; mappings compose associatively, so chunks scan with *zero*
shared bytes and a cheap reduce recovers the single-shot answer exactly
— for any ruleset, bounded or not.

The MFSA twist is that the execution state is not one NFA state set but
the activation function ``J : state → rule bitmask`` (paper §V), and
the per-symbol step

    ``J'(dst) = ⋃ (J(src) ∪ init(src)) ∩ bel(src→dst)``

is *affine over bitmask union*: ``(J|init)&bel = (J&bel) | (init&bel)``,
and the linear half treats every ``(state, rule-slot)`` bit
independently (a single slot bit can only stay that slot bit or die —
``mask & bel`` never moves bits between slots).  So the simultaneous
run needs exactly one column per possible *entry pair* ``(q, s)`` —
a state ``q`` holding a live bit of rule slot ``s`` — plus one affine
"empty entry" column that carries the ``init`` feeding.  All columns
advance in a single pass with the same per-transition AND/OR the plain
python backend performs, just on wider masks (the layout puts the
empty-entry column in the low ``num_rules`` bits and entry-pair columns
above them), keeping the simultaneous-run overhead a constant factor
rather than the |Q|× of textbook SFA construction.

Entry pairs are restricted to *live* pairs — ``(q, s)`` such that ``q``
has at least one outgoing transition belonging to ``s`` on some symbol.
A bit anywhere else can never move again and never report again (match
events fire on *entering* a final state), so dropping dead bits is
match-preserving; it is also what makes the mapping algebra a clean
monoid (``compose`` with :meth:`SfaScanner.identity` is exact equality,
property-tested).  Consequently :meth:`ChunkMapping.apply` returns the
*live projection* of the engine's activation state — byte-identical
matches, with provably irrelevant dead bits pruned.

Match events come in two kinds, mirroring the affine split:

* *const matches* — produced from the empty entry (with ``init``
  feeding every position): exactly what a standalone scan of the chunk
  reports.  Always valid, whatever the true entry activation.
* *conditional matches* — keyed by entry pair: reported only when that
  pair's bit is live at chunk entry.

Positions are stored as **runs** (inclusive ``(lo, hi)`` ranges) rather
than enumerated offsets — the compact-tabulation idea of Bille
(PAPERS.md): a ``.*``-style rule that matches at every position from
some point on costs one run, not one tuple per byte (the same shape as
the serve layer's ``all_offsets_rules`` compaction).

Rules whose language contains ε match at every offset ``0..n``; like
everywhere else in the codebase they are handled *outside* the mapping
(see ``MfsaTables.empty_matching_rules``) and completed by the caller.

:class:`ChunkMapping` is pure picklable data (worker processes ship
mappings home); the :class:`SfaScanner` that understands its layout is
rebuilt per process from the same MFSA and re-attached via
:meth:`SfaScanner.attach` (a structural fingerprint guards mismatches).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import repro.obs as obs
from repro.engine.counters import ExecutionStats, RunResult
from repro.engine.dense import DEFAULT_PROMOTE_AFTER, DenseTier
from repro.engine.lazy import LazyConfigCache
from repro.engine.tables import MfsaTables, limbs_for
from repro.guard.errors import AllocationFailed, ScanDeadlineExceeded, UsageError
from repro.mfsa.model import Mfsa

__all__ = [
    "ChunkMapping",
    "MappingScan",
    "SfaScanner",
    "expand_runs",
    "fold_mappings",
]

#: Scan positions between deadline checks (mirrors IMfantEngine).
DEFAULT_DEADLINE_STRIDE = 4096

#: Bulk-kernel rebuild gate: a tier is only recompiled after a de-opt
#: window during which the extended config graph grew by fewer than
#: this many configs.  Rulesets whose entry-pair graph never converges
#: (``.*``-heavy ones mint fresh configs every byte) would otherwise
#: trigger ever-larger table builds that cost more than they save; they
#: stay on the de-opt (memoizing lazy) driver instead, which is no
#: slower than the interpretive pass.
_BULK_STABLE_GROWTH = 1024

#: Never compile an extended-config tier larger than this: the table
#: build is an O(configs × classes) pure-python pass, and past this
#: size its one-off cost stops amortising against chunk traffic.  The
#: small resident tier keeps serving whatever it covers; everything
#: else stays on the memoizing de-opt driver.
_BULK_MAX_CONFIGS = 1 << 13

#: Inclusive position runs, sorted, disjoint, non-adjacent (canonical).
Runs = tuple  # tuple[tuple[int, int], ...]


def _canon_runs(runs: Iterable[tuple[int, int]]) -> Runs:
    """Canonical run list: sorted, overlapping/adjacent runs merged."""
    merged: list[list[int]] = []
    for lo, hi in sorted(runs):
        if merged and lo <= merged[-1][1] + 1:
            if hi > merged[-1][1]:
                merged[-1][1] = hi
        else:
            merged.append([lo, hi])
    return tuple((lo, hi) for lo, hi in merged)


def _shift_runs(runs: Runs, offset: int) -> Iterable[tuple[int, int]]:
    return ((lo + offset, hi + offset) for lo, hi in runs)


def expand_runs(runs: Runs) -> Iterable[int]:
    """Enumerate the positions of a canonical run list."""
    for lo, hi in runs:
        yield from range(lo, hi + 1)


def _append_pos(runs: list[list[int]], pos: int) -> None:
    """Append one position to an in-construction run list (positions
    arrive non-decreasing — several final states can hit the same slot
    at one position — so this is O(1) and stays canonical)."""
    if runs:
        last = runs[-1][1]
        if pos == last:
            return
        if pos == last + 1:
            runs[-1][1] = pos
            return
    runs.append([pos, pos])


def _append_run(runs: list[list[int]], lo: int, hi: int) -> None:
    """Append one inclusive run (runs arrive in position order from the
    dense stepper's event stream; adjacent/overlapping runs merge so the
    result is canonical — identical to what :func:`_append_pos` builds
    position by position)."""
    if runs and lo <= runs[-1][1] + 1:
        if hi > runs[-1][1]:
            runs[-1][1] = hi
        return
    runs.append([lo, hi])


def _bits(mask: int) -> Iterable[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@dataclass(frozen=True)
class ChunkMapping:
    """The simultaneous-run summary of one chunk (pure picklable data).

    ``exit_reach``/``cond_matches`` encode the linear half over *entry
    pairs* (see module docstring); ``const_exit``/``const_matches`` the
    affine empty-entry column.  All positions are chunk-relative ends in
    ``1..length``; activation masks are over dense rule *slots*.

    Use via an attached :class:`SfaScanner` (``scanner.compose(a, b)``,
    ``mapping.apply(entry)``); the convenience methods delegate to the
    scanner captured at construction (dropped on pickle — reattach with
    :meth:`SfaScanner.attach`).
    """

    #: structural fingerprint of the MFSA layout this mapping is for
    signature: str
    #: chunk length in bytes
    length: int
    #: state → slot mask: exit activation from the empty entry (live
    #: projection — dead bits pruned, see module docstring)
    const_exit: dict
    #: rule id → runs of match end positions from the empty entry
    const_matches: dict
    #: state → entry-pair mask: which entry pairs reach this state
    exit_reach: dict
    #: entry pair → runs of match end positions conditional on it
    cond_matches: dict
    #: the scanner this mapping was built by (not pickled, not compared)
    scanner: Optional["SfaScanner"] = field(
        default=None, compare=False, repr=False
    )

    def __getstate__(self):
        state = self.__dict__.copy()
        state["scanner"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def _require_scanner(self) -> "SfaScanner":
        if self.scanner is None:
            raise UsageError(
                "mapping is detached (pickled?); re-attach with SfaScanner.attach"
            )
        return self.scanner

    def compose(self, other: "ChunkMapping") -> "ChunkMapping":
        """``self`` then ``other`` — associative (property-tested)."""
        return self._require_scanner().compose(self, other)

    def apply(
        self, entry: Optional[dict] = None, base: int = 0
    ) -> tuple[set, dict]:
        """Matches and exit activation given the entry activation.

        ``entry`` is a ``state → slot mask`` activation (``None``/empty
        = stream start); returned match ends are rebased by ``base``.
        The exit activation is the live projection of what a
        byte-by-byte engine run would hold after this chunk.
        """
        return self._require_scanner().apply(self, entry, base)


@dataclass
class MappingScan:
    """One chunk scanned: its mapping plus execution provenance."""

    mapping: ChunkMapping
    #: const-column work counters — what a standalone scan would report
    stats: ExecutionStats
    #: transitions where the simultaneous (entry-pair) half was live —
    #: the extra work the mapping costs over a plain scan; feeds
    #: :meth:`repro.engine.cost.CostModel.mapping_run_cost`
    linear_ops: int = 0


class SfaScanner:
    """Simultaneous-run scanner for one MFSA: builds, composes and
    applies :class:`ChunkMapping`\\ s.

    Immutable after construction and safe to share across threads
    (scans keep their state in locals); build one per process and
    :meth:`attach` mappings that crossed a process boundary.
    """

    def __init__(
        self,
        mfsa: Mfsa,
        pop_on_final: bool = False,
        tables: Optional[MfsaTables] = None,
        scan_deadline: Optional[float] = None,
        deadline_stride: int = DEFAULT_DEADLINE_STRIDE,
    ) -> None:
        if scan_deadline is not None and scan_deadline <= 0:
            raise UsageError(f"scan_deadline must be positive (got {scan_deadline})")
        if deadline_stride < 1:
            raise UsageError(f"deadline_stride must be >= 1 (got {deadline_stride})")
        if getattr(mfsa, "counting", ()):
            # A mapping composes pure state-to-state reachability; counter
            # registers carry positions, which no finite mapping can.
            raise UsageError(
                "SfaScanner cannot scan counter registers; expand() the "
                "CountingMfsa first or use overlap chunking"
            )
        self.pop_on_final = pop_on_final
        self.scan_deadline = scan_deadline
        self.deadline_stride = deadline_stride
        self.tables = tables if tables is not None else MfsaTables.build(mfsa)
        self._build_index()
        #: per-thread bulk-kernel state (lazy cache + dense tier over
        #: the extended column layout) — caches are single-writer
        #: mutable, so each scanning thread owns one; the scanner
        #: itself stays shareable
        self._bulk = threading.local()
        self._ext_tables_cache: Optional[MfsaTables] = None

    # -- index construction ------------------------------------------------

    def _build_index(self) -> None:
        tables = self.tables
        num_rules = tables.num_rules
        num_states = tables.num_states

        # ε-matching rules are handled entirely outside the mapping
        # (they match at *every* offset — the all_offsets_rules
        # convention); drop their slots from the tracked universe so
        # mappings never carry or report them
        eps_slots = 0
        for slot, rule in enumerate(tables.slot_to_rule):
            if rule in tables.empty_matching_rules:
                eps_slots |= 1 << slot
        self.eps_slots = eps_slots
        keep = ((1 << num_rules) - 1) & ~eps_slots

        # live slots per state: slots with >=1 outgoing belonging
        # transition on some symbol — the only (state, slot) bits that
        # can ever move or report again
        live_slots = [0] * num_states
        for triples in tables.by_symbol:
            for src, _dst, bel in triples:
                live_slots[src] |= bel & keep
        self.live_slots = live_slots

        # entry pairs, state-major, slot-ascending (deterministic)
        pairs: list[tuple[int, int]] = []
        pairs_at_state = [0] * num_states
        for state in range(num_states):
            for slot in _bits(live_slots[state]):
                pairs_at_state[state] |= 1 << len(pairs)
                pairs.append((state, slot))
        self.pairs = pairs
        self.num_pairs = len(pairs)
        self.pairs_at_state = pairs_at_state

        # per slot: mask of all pairs carrying that slot
        slot_pairs = [0] * num_rules
        for index, (_state, slot) in enumerate(pairs):
            slot_pairs[slot] |= 1 << index
        self.slot_pairs = slot_pairs

        # combined-column layout: slots in bits [0, num_rules), pairs
        # shifted above them — one AND/OR advances both halves
        shift = num_rules
        self.pair_shift = shift
        self.slots_area = (1 << num_rules) - 1

        def lift(pair_mask: int) -> int:
            return pair_mask << shift

        # per-state extended masks (all restricted to non-ε slots)
        self.init_ext = [m & keep for m in tables.init_mask]  # feeds const only
        self.final_ext = [0] * num_states
        self.live_ext = [0] * num_states
        for state in range(num_states):
            fin = tables.final_mask[state] & keep
            fin_pairs = 0
            for slot in _bits(fin):
                fin_pairs |= slot_pairs[slot]
            self.final_ext[state] = fin | lift(fin_pairs)
            live_pairs = 0
            for slot in _bits(live_slots[state]):
                live_pairs |= slot_pairs[slot]
            self.live_ext[state] = live_slots[state] | lift(live_pairs)

        # per-symbol transition triples with extended belonging masks
        self.by_symbol_ext: list[list[tuple[int, int, int]]] = []
        for triples in tables.by_symbol:
            extended = []
            for src, dst, bel in triples:
                bel_kept = bel & keep
                bel_pairs = 0
                for slot in _bits(bel_kept):
                    bel_pairs |= slot_pairs[slot]
                ext = bel_kept | lift(bel_pairs)
                if ext:
                    extended.append((src, dst, ext))
            self.by_symbol_ext.append(extended)

        self.signature = self._fingerprint()

    def _fingerprint(self) -> str:
        """Stable structural id of the MFSA layout (cross-process)."""
        import hashlib

        h = hashlib.sha256()
        tables = self.tables
        h.update(f"{tables.num_states}:{tables.num_rules}:".encode())
        h.update(",".join(str(r) for r in tables.slot_to_rule).encode())
        h.update(b"|")
        h.update(",".join(str(m) for m in tables.init_mask).encode())
        h.update(b"|")
        h.update(",".join(str(m) for m in tables.final_mask).encode())
        h.update(b"|")
        for symbol, triples in enumerate(tables.by_symbol):
            if not triples:
                continue
            h.update(str(symbol).encode())
            for src, dst, bel in triples:
                h.update(f":{src},{dst},{bel}".encode())
        h.update(f"|pop={int(self.pop_on_final)}".encode())
        return h.hexdigest()[:16]

    # -- mapping construction ----------------------------------------------

    def identity(self) -> ChunkMapping:
        """The empty chunk: neutral element of :meth:`compose`."""
        exit_reach = {
            state: mask >> 0
            for state, mask in enumerate(self.pairs_at_state)
            if mask
        }
        return ChunkMapping(
            signature=self.signature,
            length=0,
            const_exit={},
            const_matches={},
            exit_reach=exit_reach,
            cond_matches={},
            scanner=self,
        )

    def attach(self, mapping: ChunkMapping) -> ChunkMapping:
        """Re-bind a detached (unpickled) mapping to this scanner."""
        if mapping.signature != self.signature:
            raise UsageError(
                f"mapping signature {mapping.signature} does not match "
                f"scanner {self.signature} (different MFSA or pop_on_final)"
            )
        if mapping.scanner is self:
            return mapping
        return ChunkMapping(
            signature=mapping.signature,
            length=mapping.length,
            const_exit=mapping.const_exit,
            const_matches=mapping.const_matches,
            exit_reach=mapping.exit_reach,
            cond_matches=mapping.cond_matches,
            scanner=self,
        )

    def _deadline_check(
        self,
        deadline_at: float,
        started: float,
        consumed: int,
        matches: set,
        stats: ExecutionStats,
    ) -> None:
        from repro.guard import faultinject

        faultinject.fire("engine.step_delay")
        now = time.perf_counter()
        if now <= deadline_at:
            return
        stats.wall_seconds = now - started
        stats.chars_processed = consumed
        stats.match_count = len(matches)
        partial = RunResult(matches=matches, stats=stats)
        raise ScanDeadlineExceeded(
            f"mapping scan exceeded deadline after {consumed} bytes",
            limit=self.scan_deadline,
            used=now - started,
            partial=partial,
        )

    # -- the bulk kernel (dense stepper over entry-pair columns) -----------

    def _ext_tables(self) -> MfsaTables:
        """Synthetic :class:`MfsaTables` over the combined-column bit
        layout: ``num_rules + num_pairs`` rule slots, ``init_ext``
        feeding only the const half, extended belonging masks.  The
        lazy cache's interpretive step over these tables *is* the
        simultaneous-run step (same ``(J|init)&bel`` recurrence on
        wider masks), so the whole lazy→dense machinery applies to
        mapping scans unchanged."""
        cached = self._ext_tables_cache
        if cached is None:
            total = self.tables.num_rules + self.num_pairs
            cached = MfsaTables(
                num_states=self.tables.num_states,
                num_rules=total,
                slot_to_rule=list(range(total)),
                init_mask=list(self.init_ext),
                final_mask=list(self.final_ext),
                by_symbol=self.by_symbol_ext,
                empty_matching_rules=[],
            )
            self._ext_tables_cache = cached
        return cached

    @staticmethod
    def _rebuild_traffic(tier, cache) -> int:
        """De-opt bytes that must accrue before the next rebuild check:
        scales with both the resident table and the *projected* one, so
        a rebuild's O(configs × classes) build cost is always financed
        by proportional scan traffic."""
        k = tier.num_classes
        projected = cache.num_configs * (3 * k * 4 + (k + 1) * 8)
        return max(DEFAULT_PROMOTE_AFTER, tier.nbytes // 8, projected // 8)

    def _start_frontier(self) -> dict:
        shift = self.pair_shift
        return {
            state: mask << shift
            for state, mask in enumerate(self.pairs_at_state)
            if mask
        }

    def _bulk_scan_chunk(
        self, payload: bytes, deadline_at: Optional[float], started: float
    ) -> Optional[MappingScan]:
        """Scan one chunk with the dense bulk kernel; ``None`` falls
        back to the interpretive pass (build failure, or a mid-scan
        cache flush that invalidated the tier).

        The per-thread cache interprets cold regions (warming as it
        goes) and the compiled tier bulk-steps warm ones — chunk scans
        start at lazy-cache speed and converge to dense speed as the
        entry-pair config graph stabilises.  ``linear_ops`` is reported
        as 0 on this path: the κ-counters that feed the autotune cost
        model come from ``collect_stats=True`` scans, which keep the
        exact interpretive loop.
        """
        st = self._bulk
        if getattr(st, "disabled", False):
            return None
        cache = getattr(st, "cache", None)
        if cache is None:
            cache = LazyConfigCache(self._ext_tables(), pop_on_final=self.pop_on_final)
            st.cache = cache
            st.tier = None
        tier = st.tier
        if tier is not None and not tier.valid():
            tier = None  # flushed between chunks: ids renumbered
        if tier is not None and st.since_build >= self._rebuild_traffic(tier, cache):
            # End of a de-opt observation window.  Fold the de-opt
            # region into a fresh tier only when the graph *stabilised*
            # over the window; a graph still minting configs (dotstar-
            # style entry-pair explosion) would make every rebuild
            # bigger and still useless, so just open a new window.
            grown = cache.num_configs - st.configs_at_check
            st.configs_at_check = cache.num_configs
            st.since_build = 0
            if (
                grown < _BULK_STABLE_GROWTH
                and tier.num_configs < cache.num_configs <= _BULK_MAX_CONFIGS
            ):
                tier = None
        if tier is None:
            st.start_config = cache.config_id_of(self._start_frontier())
            try:
                tier = DenseTier.build(cache)
            except AllocationFailed:
                st.disabled = True
                return None
            st.tier = tier
            st.since_build = 0
            st.configs_at_check = cache.num_configs

        outcome = tier.scan(
            payload,
            start_config=st.start_config,
            deadline_at=deadline_at,
            deadline_stride=self.deadline_stride,
        )
        st.since_build += outcome.deopt_bytes
        if outcome.reason == "invalidated":
            st.tier = None  # rebuilt (and start re-interned) next chunk
            return None

        # decode emission events: slots below pair_shift are const
        # (empty-entry) matches, the rest are entry-pair conditionals
        slot_to_rule = self.tables.slot_to_rule
        shift = self.pair_shift
        const_runs: dict[int, list[list[int]]] = {}
        cond_runs: dict[int, list[list[int]]] = {}
        emissions = tier.emissions
        for eid, lo, hi in outcome.events:
            slots, _mask = emissions[eid]
            for slot in slots:
                if slot < shift:
                    rule = slot_to_rule[slot]
                    runs = const_runs.get(rule)
                    if runs is None:
                        runs = const_runs[rule] = []
                    _append_run(runs, lo, hi)
                else:
                    pair = slot - shift
                    runs = cond_runs.get(pair)
                    if runs is None:
                        runs = cond_runs[pair] = []
                    _append_run(runs, lo, hi)

        stats = ExecutionStats()
        stats.mask_limbs = limbs_for(self.tables.num_rules)
        if outcome.reason == "deadline":
            const_match_set = {
                (rule, pos)
                for rule, runs in const_runs.items()
                for lo, hi in runs
                for pos in range(lo, hi + 1)
            }
            self._deadline_check(
                deadline_at, started, outcome.consumed, const_match_set, stats
            )

        frontier = cache.frontier_of(outcome.final_config)
        slots_area = self.slots_area
        live_ext = self.live_ext
        const_exit: dict[int, int] = {}
        exit_reach: dict[int, int] = {}
        for state, mask in frontier.items():
            live = mask & live_ext[state]
            if not live:
                continue
            slots = live & slots_area
            if slots:
                const_exit[state] = slots
            reach = live >> shift
            if reach:
                exit_reach[state] = reach

        mapping = ChunkMapping(
            signature=self.signature,
            length=len(payload),
            const_exit=const_exit,
            const_matches={
                rule: tuple(tuple(r) for r in runs)
                for rule, runs in const_runs.items()
            },
            exit_reach=exit_reach,
            cond_matches={
                pair: tuple(tuple(r) for r in runs)
                for pair, runs in cond_runs.items()
            },
            scanner=self,
        )
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.match_count = sum(
            hi - lo + 1 for runs in const_runs.values() for lo, hi in runs
        )
        return MappingScan(mapping=mapping, stats=stats, linear_ops=0)

    def scan_chunk(
        self,
        data: bytes | str,
        collect_stats: bool = True,
        deadline_at: Optional[float] = None,
    ) -> MappingScan:
        """One simultaneous pass over ``data`` → its :class:`ChunkMapping`.

        ``deadline_at`` is an absolute ``time.perf_counter`` expiry (the
        serve convention); on expiry the raised
        :class:`~repro.guard.errors.ScanDeadlineExceeded` carries the
        honest partial *const* matches — genuine matches of the scanned
        prefix, valid whatever the entry activation.  A truncated
        mapping is never returned: partial mappings do not compose.

        ``collect_stats=False`` scans take the dense **bulk kernel**
        (:meth:`_bulk_scan_chunk`): a per-thread lazy cache + compiled
        tier over the extended entry-pair columns replaces the
        byte-by-byte interpretation — same mapping, byte-identical
        matches (property-tested).  Stats scans keep the interpretive
        loop, whose exact κ-counters feed the autotune cost model.
        """
        payload = data.encode("latin-1") if isinstance(data, str) else data
        if deadline_at is None and self.scan_deadline is not None:
            deadline_at = time.perf_counter() + self.scan_deadline

        if not collect_stats:
            with obs.span(
                "sfa.bulk_chunk",
                pairs=self.num_pairs,
                bytes=len(payload),
            ):
                scan = self._bulk_scan_chunk(
                    payload, deadline_at, time.perf_counter()
                )
            if scan is not None:
                return scan

        tables = self.tables
        by_symbol_ext = self.by_symbol_ext
        init_ext = self.init_ext
        final_ext = self.final_ext
        slots_area = self.slots_area
        pair_shift = self.pair_shift
        slot_to_rule = tables.slot_to_rule
        pop_on_final = self.pop_on_final
        dstride = self.deadline_stride

        stats = ExecutionStats()
        stats.mask_limbs = limbs_for(tables.num_rules)
        #: const matches recorded engine-style for the deadline partial
        const_match_set: set[tuple[int, int]] = set()
        const_runs: dict[int, list[list[int]]] = {}
        cond_runs: dict[int, list[list[int]]] = {}
        linear_ops = 0

        with obs.span(
            "sfa.scan_chunk",
            states=tables.num_states,
            rules=tables.num_rules,
            pairs=self.num_pairs,
            bytes=len(payload),
        ) as sp:
            started = time.perf_counter()
            # combined column vector: low bits const J, high bits pairs
            active: dict[int, int] = {
                state: mask << pair_shift
                for state, mask in enumerate(self.pairs_at_state)
                if mask
            }
            consumed = 0
            for position, byte in enumerate(payload, start=1):
                consumed = position
                if deadline_at is not None and position % dstride == 0:
                    self._deadline_check(
                        deadline_at, started, consumed, const_match_set, stats
                    )
                enabled = by_symbol_ext[byte]
                nxt: dict[int, int] = {}
                for src, dst, bel_ext in enabled:
                    mask = (active.get(src, 0) | init_ext[src]) & bel_ext
                    if mask:
                        nxt[dst] = nxt.get(dst, 0) | mask
                        if collect_stats:
                            if mask & slots_area:
                                stats.transitions_taken += 1
                            if mask >> pair_shift:
                                linear_ops += 1
                active = nxt
                for state, mask in nxt.items():
                    hit = mask & final_ext[state]
                    if hit:
                        chit = hit & slots_area
                        if chit:
                            for slot in _bits(chit):
                                rule = slot_to_rule[slot]
                                const_match_set.add((rule, position))
                                runs = const_runs.get(rule)
                                if runs is None:
                                    runs = const_runs[rule] = []
                                _append_pos(runs, position)
                        phit = hit >> pair_shift
                        if phit:
                            for pair in _bits(phit):
                                runs = cond_runs.get(pair)
                                if runs is None:
                                    runs = cond_runs[pair] = []
                                _append_pos(runs, position)
                        if pop_on_final:
                            active[state] = mask & ~hit
                if collect_stats:
                    stats.transitions_examined += len(enabled)
                    total = 0
                    peak = stats.max_state_activation
                    for mask in active.values():
                        n = (mask & slots_area).bit_count()
                        total += n
                        if n > peak:
                            peak = n
                    stats.active_pair_total += total
                    stats.max_state_activation = peak
            stats.wall_seconds = time.perf_counter() - started
            stats.chars_processed = len(payload)
            stats.match_count = len(const_match_set)

            # live projection: prune bits that can never act again
            const_exit: dict[int, int] = {}
            exit_reach: dict[int, int] = {}
            live_ext = self.live_ext
            for state, mask in active.items():
                live = mask & live_ext[state]
                if not live:
                    continue
                slots = live & slots_area
                if slots:
                    const_exit[state] = slots
                reach = live >> pair_shift
                if reach:
                    exit_reach[state] = reach

            mapping = ChunkMapping(
                signature=self.signature,
                length=len(payload),
                const_exit=const_exit,
                const_matches={
                    rule: tuple(tuple(r) for r in runs)
                    for rule, runs in const_runs.items()
                },
                exit_reach=exit_reach,
                cond_matches={
                    pair: tuple(tuple(r) for r in runs)
                    for pair, runs in cond_runs.items()
                },
                scanner=self,
            )
            sp.set(
                const_matches=len(const_match_set),
                cond_pairs=len(cond_runs),
                linear_ops=linear_ops,
            )
        return MappingScan(mapping=mapping, stats=stats, linear_ops=linear_ops)

    # -- the mapping algebra -----------------------------------------------

    def _entry_pair_mask(self, activation: Optional[dict]) -> int:
        """state → slot-mask activation → mask over live entry pairs
        (bits at dead (state, slot) positions are dropped — they can
        never move or report again)."""
        if not activation:
            return 0
        pairs_at_state = self.pairs_at_state
        pairs = self.pairs
        live_slots = self.live_slots
        mask = 0
        for state, slots in activation.items():
            if not slots:
                continue
            live = slots & live_slots[state]
            if not live:
                continue
            candidate = pairs_at_state[state]
            for pair in _bits(candidate):
                if (1 << pairs[pair][1]) & live:
                    mask |= 1 << pair
        return mask

    def compose(self, a: ChunkMapping, b: ChunkMapping) -> ChunkMapping:
        """The mapping of ``a``'s chunk followed by ``b``'s chunk.

        Associative with :meth:`identity` as the neutral element —
        relation composition per rule slot, plus run-list unions with
        ``b``'s positions shifted by ``a.length`` (property-tested in
        tests/test_sfa_mapping.py).
        """
        if a.signature != self.signature or b.signature != self.signature:
            raise UsageError("cannot compose mappings from different MFSAs")
        pairs = self.pairs
        slot_pairs = self.slot_pairs
        a_reach = a.exit_reach
        shift = a.length

        # entry pairs of b fed by a's const (empty-entry) column
        mid_const = self._entry_pair_mask(a.const_exit)

        # const matches: a's, b's shifted, and b's conditionals lit by
        # a's const exit
        const_runs: dict[int, list[tuple[int, int]]] = {
            rule: list(runs) for rule, runs in a.const_matches.items()
        }
        for rule, runs in b.const_matches.items():
            const_runs.setdefault(rule, []).extend(_shift_runs(runs, shift))
        for pair in _bits(mid_const):
            runs = b.cond_matches.get(pair)
            if runs:
                rule = self.tables.slot_to_rule[pairs[pair][1]]
                const_runs.setdefault(rule, []).extend(_shift_runs(runs, shift))

        # const exit: b's own, plus a's const bits pushed through b
        const_exit = dict(b.const_exit)
        if mid_const:
            for state, reach in b.exit_reach.items():
                sel = reach & mid_const
                if sel:
                    slots = 0
                    for pair in _bits(sel):
                        slots |= 1 << pairs[pair][1]
                    const_exit[state] = const_exit.get(state, 0) | slots

        # linear half: back-compose b's reach through a's reach, and
        # light b's conditionals from whichever entry pairs of a reach
        # their trigger pair
        def back(pair: int) -> int:
            """Entry pairs of ``a`` that exit at pair's (state, slot)."""
            state, slot = pairs[pair]
            return a_reach.get(state, 0) & slot_pairs[slot]

        exit_reach: dict[int, int] = {}
        for state, reach in b.exit_reach.items():
            acc = 0
            for pair in _bits(reach):
                acc |= back(pair)
            if acc:
                exit_reach[state] = acc

        cond_runs: dict[int, list[tuple[int, int]]] = {
            pair: list(runs) for pair, runs in a.cond_matches.items()
        }
        for pair, runs in b.cond_matches.items():
            triggers = back(pair)
            if triggers:
                shifted = list(_shift_runs(runs, shift))
                for entry in _bits(triggers):
                    cond_runs.setdefault(entry, []).extend(shifted)

        return ChunkMapping(
            signature=self.signature,
            length=a.length + b.length,
            const_exit=const_exit,
            const_matches={
                rule: _canon_runs(runs) for rule, runs in const_runs.items()
            },
            exit_reach=exit_reach,
            cond_matches={
                pair: _canon_runs(runs) for pair, runs in cond_runs.items()
            },
            scanner=self,
        )

    def apply(
        self,
        mapping: ChunkMapping,
        entry: Optional[dict] = None,
        base: int = 0,
    ) -> tuple[set, dict]:
        """Replay ``mapping`` from ``entry``: ``(matches, exit_activation)``.

        Matches are ``(rule id, absolute end)`` with ends rebased by
        ``base``; the exit activation is the live projection of the
        byte-by-byte engine state after the chunk (ε-rule every-offset
        matches are the caller's to complete, as everywhere else).
        """
        if mapping.signature != self.signature:
            raise UsageError("cannot apply a mapping from a different MFSA")
        pairs = self.pairs
        slot_to_rule = self.tables.slot_to_rule
        entry_mask = self._entry_pair_mask(entry)

        matches: set[tuple[int, int]] = set()
        for rule, runs in mapping.const_matches.items():
            for pos in expand_runs(runs):
                matches.add((rule, pos + base))
        if entry_mask:
            for pair, runs in mapping.cond_matches.items():
                if (entry_mask >> pair) & 1:
                    rule = slot_to_rule[pairs[pair][1]]
                    for pos in expand_runs(runs):
                        matches.add((rule, pos + base))

        exit_activation = dict(mapping.const_exit)
        if entry_mask:
            for state, reach in mapping.exit_reach.items():
                sel = reach & entry_mask
                if sel:
                    slots = 0
                    for pair in _bits(sel):
                        slots |= 1 << pairs[pair][1]
                    if slots:
                        exit_activation[state] = (
                            exit_activation.get(state, 0) | slots
                        )
        return matches, exit_activation

    def live_activation(self, activation: Optional[dict]) -> dict:
        """The live projection of an engine activation state — what
        :meth:`apply` exits compare equal to (dead bits pruned)."""
        if not activation:
            return {}
        out = {}
        for state, slots in activation.items():
            live = slots & self.live_slots[state]
            if live:
                out[state] = live
        return out


def fold_mappings(
    scans: Sequence[Optional[ChunkMapping]],
    lengths: Sequence[int],
    scanner: SfaScanner,
) -> tuple[set, Optional[dict]]:
    """Left-fold a chunk sequence's mappings into absolute matches.

    The cheap dispatcher-side reduce: thread the exit activation of each
    chunk into the next mapping's :meth:`~SfaScanner.apply` — O(state
    width), no byte rescanning, equivalent to composing all mappings and
    applying the empty entry (associativity is what lets workers finish
    out of order; only this final fold is ordered).

    A ``None`` entry stands for a chunk whose mapping could not be
    computed (deadline): its const matches were salvaged by the caller;
    the fold continues from the *empty* activation — a sound
    under-approximation (the step function is monotone in the entry
    activation), so later chunks still contribute every match that does
    not depend on the lost boundary state.  Returns ``(matches,
    exit_activation)`` with ``exit_activation=None`` when the final
    chunk's mapping was lost.
    """
    if len(scans) != len(lengths):
        raise UsageError("scans and lengths disagree")
    matches: set[tuple[int, int]] = set()
    activation: Optional[dict] = {}
    base = 0
    for mapping, length in zip(scans, lengths):
        if mapping is None:
            activation = {}
            base += length
            continue
        found, activation = scanner.apply(mapping, activation, base)
        matches |= found
        base += mapping.length
    return matches, activation
