"""Step-by-step execution tracing for MFSAs.

The paper explains iMFAnt with annotated walk-throughs (Figs. 3 and 6):
for each consumed character, which states are active and with which
activation sets, and which matches fire.  ``trace_execution`` produces
exactly that narrative from a live MFSA — the debugging view for rule
authors ("why did/didn't my rule fire here?") and the machine-checkable
form of the paper's figures (the Fig. 6 walk-through is a test).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.engine.tables import MfsaTables
from repro.mfsa.model import Mfsa


@dataclass(frozen=True)
class StepTrace:
    """One consumed character's effect."""

    #: 1-based offset of the consumed character
    position: int
    #: the character (byte value)
    byte: int
    #: active states after the step: state -> sorted active rule ids (J)
    activation: dict[int, tuple[int, ...]]
    #: matches fired at this position: (rule, state) pairs
    fired: tuple[tuple[int, int], ...]

    def describe(self, alphabet: bool = True) -> str:
        char = chr(self.byte) if alphabet and 0x20 <= self.byte <= 0x7E else f"\\x{self.byte:02x}"
        parts = [f"@{self.position} '{char}':"]
        if not self.activation:
            parts.append("no active states (all paths discarded)")
        for state, rules in sorted(self.activation.items()):
            parts.append(f"q{state}{{J={','.join(map(str, rules))}}}")
        for rule, state in self.fired:
            parts.append(f"MATCH rule {rule} at q{state}")
        return " ".join(parts)


@dataclass
class ExecutionTrace:
    """Full trace of one run; iterable over steps."""

    steps: list[StepTrace] = field(default_factory=list)

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def matches(self) -> set[tuple[int, int]]:
        """(rule, end_offset) matches — agrees with the engines (tested)."""
        return {
            (rule, step.position) for step in self.steps for rule, _ in step.fired
        }

    def describe(self) -> str:
        return "\n".join(step.describe() for step in self.steps)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the trace (exportable next to repro.obs span dumps).

        The schema is stable and round-trips through :meth:`from_json`:
        activation keys become strings (JSON objects), rule tuples become
        lists; ``from_json`` restores the exact in-memory form.
        """
        return json.dumps(
            {
                "version": 1,
                "steps": [
                    {
                        "position": step.position,
                        "byte": step.byte,
                        "activation": {
                            str(state): list(rules)
                            for state, rules in sorted(step.activation.items())
                        },
                        "fired": [list(pair) for pair in step.fired],
                    }
                    for step in self.steps
                ],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExecutionTrace":
        """Inverse of :meth:`to_json` (raises ``ValueError`` on bad input)."""
        document = json.loads(text)
        if not isinstance(document, dict) or "steps" not in document:
            raise ValueError("not an ExecutionTrace JSON document")
        steps = []
        for row in document["steps"]:
            steps.append(
                StepTrace(
                    position=int(row["position"]),
                    byte=int(row["byte"]),
                    activation={
                        int(state): tuple(int(r) for r in rules)
                        for state, rules in row["activation"].items()
                    },
                    fired=tuple(
                        (int(rule), int(state)) for rule, state in row["fired"]
                    ),
                )
            )
        return cls(steps=steps)


def trace_execution(mfsa: Mfsa, data: bytes | str) -> ExecutionTrace:
    """Run the iMFAnt semantics and record every step (see module doc)."""
    payload = data.encode("latin-1") if isinstance(data, str) else data
    tables = MfsaTables.build(mfsa)
    slot_to_rule = tables.slot_to_rule
    init_mask = tables.init_mask
    final_mask = tables.final_mask

    trace = ExecutionTrace()
    active: dict[int, int] = {}
    for position, byte in enumerate(payload, start=1):
        nxt: dict[int, int] = {}
        for src, dst, bel in tables.by_symbol[byte]:
            mask = (active.get(src, 0) | init_mask[src]) & bel
            if mask:
                nxt[dst] = nxt.get(dst, 0) | mask
        active = nxt

        activation: dict[int, tuple[int, ...]] = {}
        fired: list[tuple[int, int]] = []
        for state, mask in nxt.items():
            rules = tuple(sorted(slot_to_rule[s] for s in _bits(mask)))
            activation[state] = rules
            hit = mask & final_mask[state]
            for slot in _bits(hit):
                fired.append((slot_to_rule[slot], state))
        trace.steps.append(
            StepTrace(position=position, byte=byte, activation=activation,
                      fired=tuple(sorted(fired)))
        )
    return trace


def _bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
