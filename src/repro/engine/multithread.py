"""Multi-automata execution over a thread pool (paper §VI-C2).

The paper's multi-threaded runs distribute automata over T threads: "each
thread manages different automata asynchronously, selecting an MFSA at a
time from the remaining ones until all are executed"; the measured time
is the latency to complete the whole ruleset.

Two facilities are provided:

* :func:`run_pool` — a real ``ThreadPoolExecutor`` runner: functionally
  correct parallel matching (the GIL limits wall-clock speedup for the
  interpretive engines, so its timing is not used for figures).
* :func:`simulate_parallel_latency` — a deterministic machine-model
  simulation: dynamic FIFO list scheduling of per-automaton work values
  onto T workers, executed by a machine with ``physical_cores`` full-speed
  cores plus diminishing SMT capacity up to ``hardware_threads`` (the
  paper's i7-6700 is 4C/8T).  Workers beyond hardware threads time-share.
  This reproduces the shape of Fig. 10: time halving per thread doubling
  up to the core count, a plateau beyond, and MFSAs reaching the multi-
  FSA best latency with far fewer threads.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import repro.obs as obs
from repro.engine.counters import ExecutionStats, RunResult


@dataclass(frozen=True)
class MachineModel:
    """A simple symmetric-multiprocessor capacity model."""

    physical_cores: int = 4
    hardware_threads: int = 8
    #: extra throughput contributed by each SMT sibling beyond the
    #: physical cores (0.3 ≈ the classic "HT adds ~30%" rule of thumb).
    smt_efficiency: float = 0.3

    def capacity(self, busy_workers: int) -> float:
        """Total work units per unit time with ``busy_workers`` runnable."""
        if busy_workers <= 0:
            return 0.0
        full = min(busy_workers, self.physical_cores)
        smt = max(0, min(busy_workers, self.hardware_threads) - self.physical_cores)
        return full + self.smt_efficiency * smt


def simulate_parallel_latency(
    works: Sequence[float],
    num_threads: int,
    machine: MachineModel | None = None,
) -> float:
    """Makespan of FIFO dynamic scheduling of ``works`` onto ``num_threads``
    workers running on ``machine`` (fair processor sharing among busy
    workers).  Deterministic; returns the latency in work-time units.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    machine = machine or MachineModel()
    queue = list(works)
    if not queue:
        return 0.0
    queue_pos = 0
    # remaining work of each busy worker's current automaton
    running: list[float] = []
    while queue_pos < len(queue) and len(running) < num_threads:
        running.append(float(queue[queue_pos]))
        queue_pos += 1

    now = 0.0
    while running:
        n = len(running)
        rate = machine.capacity(n) / n  # per-worker progress rate
        finishing = min(running)
        elapsed = finishing / rate
        now += elapsed
        progressed = [w - finishing for w in running]
        running = []
        freed = 0
        for w in progressed:
            if w > 1e-12:
                running.append(w)
            else:
                freed += 1
        while freed > 0 and queue_pos < len(queue):
            running.append(float(queue[queue_pos]))
            queue_pos += 1
            freed -= 1
    return now


def list_schedule_makespan(works: Sequence[float], num_threads: int) -> float:
    """Plain FIFO list-scheduling makespan with ideal workers (no machine
    capacity limits) — the T→∞ lower envelope used in analyses."""
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    heap = [0.0] * min(num_threads, max(1, len(works)))
    heapq.heapify(heap)
    for work in works:
        finish = heapq.heappop(heap)
        heapq.heappush(heap, finish + float(work))
    return max(heap) if heap else 0.0


def lpt_schedule_makespan(works: Sequence[float], num_threads: int) -> float:
    """Longest-Processing-Time list scheduling (Graham's 4/3-approximate
    ordering): sort jobs descending before the FIFO assignment.

    The paper's runs pull automata in ruleset order; LPT is the classic
    improvement when per-automaton works are known up front (they are —
    after one profiling pass), so the scheduling ablation compares both.
    """
    return list_schedule_makespan(sorted(works, reverse=True), num_threads)


def map_pool(
    tasks: Sequence[Callable[[], object]],
    num_threads: int,
    label: str = "map_pool",
) -> list:
    """Execute ``tasks`` on a real thread pool, preserving order.

    The order-preserving sibling of :func:`run_pool` for workloads whose
    results are *positional* rather than a set union — chunk mappings
    composed left-to-right (:mod:`repro.engine.sfa`) being the driving
    case.  Same observability contract: one ``label`` span wrapping
    per-task ``<label>.worker`` child spans that close (marked) even
    when a task raises; the exception propagates to the caller.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    with obs.span(label, tasks=len(tasks), threads=num_threads) as pool_span:

        def invoke(item: tuple[int, Callable[[], object]]) -> object:
            index, task = item
            with obs.span(f"{label}.worker", parent=pool_span, task=index):
                return task()

        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            return list(pool.map(invoke, enumerate(tasks)))


def run_pool(
    runners: Sequence[Callable[[], RunResult]],
    num_threads: int,
) -> tuple[set[tuple[int, int]], ExecutionStats]:
    """Execute engine runs on a real thread pool; returns the union of
    matches and the merged statistics.  Functional correctness only —
    wall-clock scaling is limited by the GIL for the Python engines.

    Observability: the whole pool run is one ``run_pool`` span; each
    runner executes inside a ``run_pool.worker`` child span explicitly
    parented to it (workers run on pool threads, so automatic per-thread
    nesting cannot see the caller's stack).  Worker spans close even
    when a runner raises — the exception marks the span and propagates.
    """
    matches: set[tuple[int, int]] = set()
    totals = ExecutionStats()
    with obs.span("run_pool", automata=len(runners), threads=num_threads) as pool_span:

        def invoke(item: tuple[int, Callable[[], RunResult]]) -> RunResult:
            index, runner = item
            with obs.span("run_pool.worker", parent=pool_span, automaton=index):
                return runner()

        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            for result in pool.map(invoke, enumerate(runners)):
                matches |= result.matches
                totals.merge(result.stats)
        pool_span.set(matches=len(matches))
    return matches, totals
