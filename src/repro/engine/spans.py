"""Match-span recovery: start offsets for reported match ends.

The automata engines report matches as end offsets only (the iNFAnt /
DPI convention — cheapest, and enough to raise an alert).  Applications
that need the matched *span* (extraction, highlighting) can recover the
start offsets with a backward scan: from a match end, simulate the
reversed automaton over the stream right-to-left; every position where
the reversed state set touches the original initial state is a valid
start.

``find_spans`` combines a forward end-offset pass with per-end backward
scans.  Cost is O(ends × span length) in the worst case — acceptable for
the post-filtering role it plays (the hot path stays end-offset-only).
"""

from __future__ import annotations

from repro.automata.fsa import Fsa


class SpanFinder:
    """Span recovery for one rule's ε-free FSA."""

    def __init__(self, fsa: Fsa) -> None:
        if fsa.has_epsilon():
            raise ValueError("SpanFinder requires an ε-free FSA")
        self.fsa = fsa
        # reversed transition index: dst -> [(mask, src)]
        self._backward: dict[int, list[tuple[int, int]]] = {}
        for t in fsa.labelled_transitions():
            self._backward.setdefault(t.dst, []).append((t.label.mask, t.src))  # type: ignore[union-attr]
        self._accepts_empty = fsa.initial in fsa.finals

    def starts_for_end(self, data: bytes | str, end: int) -> set[int]:
        """All start offsets s such that ``data[s:end]`` matches."""
        payload = data.encode("latin-1") if isinstance(data, str) else data
        if not 0 <= end <= len(payload):
            raise ValueError(f"end offset {end} out of range")
        starts: set[int] = set()
        if self._accepts_empty:
            starts.add(end)
        current = set(self.fsa.finals)
        for position in range(end - 1, -1, -1):
            bit = 1 << payload[position]
            moved: set[int] = set()
            for state in current:
                for mask, src in self._backward.get(state, ()):
                    if mask & bit:
                        moved.add(src)
            if not moved:
                break
            current = moved
            if self.fsa.initial in current:
                starts.add(position)
        return starts

    def find_spans(self, data: bytes | str, leftmost_only: bool = False) -> set[tuple[int, int]]:
        """All (start, end) spans of matches in the stream.

        ``leftmost_only`` keeps only the leftmost (longest) start per end
        — the usual reporting convention of scanning engines.
        """
        from repro.automata.simulate import find_match_ends

        spans: set[tuple[int, int]] = set()
        for end in find_match_ends(self.fsa, data):
            starts = self.starts_for_end(data, end)
            if not starts:
                continue
            if leftmost_only:
                spans.add((min(starts), end))
            else:
                spans.update((start, end) for start in starts)
        return spans


def find_spans(fsa: Fsa, data: bytes | str, leftmost_only: bool = False) -> set[tuple[int, int]]:
    """Convenience wrapper over :class:`SpanFinder`."""
    return SpanFinder(fsa).find_spans(data, leftmost_only=leftmost_only)
