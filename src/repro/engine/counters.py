"""Execution statistics gathered by the engines.

The counters capture the two work components that dominate automata
matching (and that the cost model of :mod:`repro.engine.cost` weighs):

* ``transitions_examined`` — every transition enabled by the read symbol
  is fetched and tested (iNFAnt is memory-bandwidth-bound on this);
* ``active_pair_total`` — Σ over positions of the number of active
  (state, rule) pairs, i.e. the activation-set management load, the
  quantity reported (for M = all) in the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecutionStats:
    """Counters for one engine run over one stream."""

    chars_processed: int = 0
    transitions_examined: int = 0
    transitions_taken: int = 0
    active_pair_total: int = 0
    max_state_activation: int = 0
    match_count: int = 0
    #: 64-bit words per activation mask (⌈rules/64⌉); every activation
    #: update touches this many words, so activation-management cost
    #: scales with it — the effect that makes huge merged automata pay
    #: for their active sets (paper §VI-C1, Table II discussion).
    mask_limbs: int = 1
    #: wall-clock seconds of the run (None when not timed)
    wall_seconds: float | None = None

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another run into this one (multi-automata totals)."""
        self.chars_processed += other.chars_processed
        self.transitions_examined += other.transitions_examined
        self.transitions_taken += other.transitions_taken
        self.active_pair_total += other.active_pair_total
        self.max_state_activation = max(self.max_state_activation, other.max_state_activation)
        self.mask_limbs = max(self.mask_limbs, other.mask_limbs)
        self.match_count += other.match_count
        if other.wall_seconds is not None:
            self.wall_seconds = (self.wall_seconds or 0.0) + other.wall_seconds

    @property
    def avg_active_pairs(self) -> float:
        """Average active (state, rule) pairs per consumed symbol."""
        if self.chars_processed == 0:
            return 0.0
        return self.active_pair_total / self.chars_processed

    def as_dict(self) -> dict[str, int | float | None]:
        """JSON-ready snapshot (the serve protocol's ``stats`` object)."""
        return {
            "chars_processed": self.chars_processed,
            "transitions_examined": self.transitions_examined,
            "transitions_taken": self.transitions_taken,
            "active_pair_total": self.active_pair_total,
            "max_state_activation": self.max_state_activation,
            "match_count": self.match_count,
            "mask_limbs": self.mask_limbs,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class RunResult:
    """Matches plus statistics for one engine run."""

    matches: set[tuple[int, int]] = field(default_factory=set)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
