"""Stateful streaming matching: feed the input in chunks.

DPI engines rarely see the whole stream at once; packets arrive in
pieces.  :class:`StreamingMatcher` carries the iMFAnt activation state
across ``feed()`` calls, so matches spanning chunk boundaries are found
and offsets are absolute — feeding a stream in any chunking produces
exactly the matches of a single-shot run (property-tested).
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.tables import MfsaTables
from repro.mfsa.model import Mfsa


class StreamingMatcher:
    """Incremental iMFAnt over one MFSA (pure-Python state machine)."""

    def __init__(self, mfsa: Mfsa, pop_on_final: bool = False) -> None:
        self.tables = MfsaTables.build(mfsa)
        self.pop_on_final = pop_on_final
        self._active: dict[int, int] = {}
        self._offset = 0
        self._matches: set[tuple[int, int]] = set()
        for rule in self.tables.empty_matching_rules:
            self._matches.add((rule, 0))

    @property
    def offset(self) -> int:
        """Total bytes consumed so far."""
        return self._offset

    @property
    def matches(self) -> set[tuple[int, int]]:
        """All matches reported so far (absolute end offsets)."""
        return set(self._matches)

    def feed(self, chunk: bytes | str) -> set[tuple[int, int]]:
        """Consume one chunk; returns the matches it produced."""
        payload = chunk.encode("latin-1") if isinstance(chunk, str) else chunk
        tables = self.tables
        by_symbol = tables.by_symbol
        init_mask = tables.init_mask
        final_mask = tables.final_mask
        slot_to_rule = tables.slot_to_rule

        new_matches: set[tuple[int, int]] = set()
        active = self._active
        position = self._offset
        empty_rules = tables.empty_matching_rules
        for byte in payload:
            position += 1
            nxt: dict[int, int] = {}
            for src, dst, bel in by_symbol[byte]:
                mask = (active.get(src, 0) | init_mask[src]) & bel
                if mask:
                    nxt[dst] = nxt.get(dst, 0) | mask
            active = nxt
            for state, mask in nxt.items():
                hit = mask & final_mask[state]
                if hit:
                    bits = hit
                    while bits:
                        low = bits & -bits
                        new_matches.add((slot_to_rule[low.bit_length() - 1], position))
                        bits ^= low
                    if self.pop_on_final:
                        active[state] = mask & ~hit
            for rule in empty_rules:
                new_matches.add((rule, position))
        self._active = active
        self._offset = position
        self._matches |= new_matches
        return new_matches

    def feed_all(self, chunks: Iterable[bytes | str]) -> set[tuple[int, int]]:
        """Consume an iterable of chunks; returns all matches produced."""
        out: set[tuple[int, int]] = set()
        for chunk in chunks:
            out |= self.feed(chunk)
        return out

    def reset(self) -> None:
        """Forget all state and reported matches; offset returns to 0."""
        self._active = {}
        self._offset = 0
        self._matches = set()
        for rule in self.tables.empty_matching_rules:
            self._matches.add((rule, 0))
