"""Stateful streaming matching: feed the input in chunks.

DPI engines rarely see the whole stream at once; packets arrive in
pieces.  :class:`StreamingMatcher` carries the iMFAnt activation state
across ``feed()`` calls, so matches spanning chunk boundaries are found
and offsets are absolute — feeding a stream in any chunking produces
exactly the matches of a single-shot run (property-tested).

ε-accepting rules match at *every* offset ``0..bytes_fed``; they are
tracked as that single fact (the serve layer's ``all_offsets_rules``
compaction) rather than one tuple per byte — :attr:`StreamingMatcher.
matches` expands them on access, ``feed()`` returns only the non-ε
matches a chunk produced.

Out-of-order streams are supported through the SFA mapping algebra
(:mod:`repro.engine.sfa`): a suffix whose prefix has not arrived yet can
be scanned *now* into a :class:`~repro.engine.sfa.ChunkMapping` (via
:attr:`StreamingMatcher.scanner`) and spliced in later with
:meth:`StreamingMatcher.feed_mapping` — the mapping replays against
whatever the activation state turns out to be, in O(state width) instead
of a rescan.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.engine.sfa import ChunkMapping, SfaScanner
from repro.engine.tables import MfsaTables
from repro.mfsa.model import Mfsa


class StreamingMatcher:
    """Incremental iMFAnt over one MFSA (pure-Python state machine)."""

    def __init__(self, mfsa: Mfsa, pop_on_final: bool = False) -> None:
        self.mfsa = mfsa
        self.tables = MfsaTables.build(mfsa)
        self.pop_on_final = pop_on_final
        self._scanner: Optional[SfaScanner] = None
        # ε-rule slots stay in `hit` (pop_on_final must clear them like
        # the engine does) but are never enumerated — they're the
        # compact all_offsets_rules fact
        rule_to_slot = {rule: slot for slot, rule in enumerate(self.tables.slot_to_rule)}
        self._eps_slots = 0
        for rule in self.tables.empty_matching_rules:
            self._eps_slots |= 1 << rule_to_slot[rule]
        self._active: dict[int, int] = {}
        self._offset = 0
        self._matches: set[tuple[int, int]] = set()

    @property
    def offset(self) -> int:
        """Total bytes consumed so far."""
        return self._offset

    @property
    def matches(self) -> set[tuple[int, int]]:
        """All matches reported so far (absolute end offsets).

        ε-accepting rules are stored compactly as "matches everywhere"
        and expanded here — one tuple per consumed offset per such rule.
        """
        out = set(self._matches)
        for rule in self.tables.empty_matching_rules:
            out.update((rule, end) for end in range(self._offset + 1))
        return out

    @property
    def all_offsets_rules(self) -> list[int]:
        """Rules matching at every offset ``0..offset`` (ε-accepting),
        kept out of the enumerated set — the compact form callers at
        service scale should consume instead of :attr:`matches`."""
        return sorted(self.tables.empty_matching_rules)

    @property
    def scanner(self) -> SfaScanner:
        """The simultaneous-run scanner for this matcher's MFSA — use it
        to pre-compute suffix mappings for :meth:`feed_mapping` (built
        lazily; shares the matcher's tables)."""
        if self._scanner is None:
            self._scanner = SfaScanner(
                self.mfsa, pop_on_final=self.pop_on_final, tables=self.tables
            )
        return self._scanner

    def feed(self, chunk: bytes | str) -> set[tuple[int, int]]:
        """Consume one chunk; returns the non-ε matches it produced
        (ε-accepting rules match at every offset by definition — read
        them from :attr:`all_offsets_rules` / :attr:`matches`)."""
        payload = chunk.encode("latin-1") if isinstance(chunk, str) else chunk
        tables = self.tables
        by_symbol = tables.by_symbol
        init_mask = tables.init_mask
        final_mask = tables.final_mask
        slot_to_rule = tables.slot_to_rule
        eps_slots = self._eps_slots

        new_matches: set[tuple[int, int]] = set()
        active = self._active
        position = self._offset
        for byte in payload:
            position += 1
            nxt: dict[int, int] = {}
            for src, dst, bel in by_symbol[byte]:
                mask = (active.get(src, 0) | init_mask[src]) & bel
                if mask:
                    nxt[dst] = nxt.get(dst, 0) | mask
            active = nxt
            for state, mask in nxt.items():
                hit = mask & final_mask[state]
                if hit:
                    bits = hit & ~eps_slots
                    while bits:
                        low = bits & -bits
                        new_matches.add((slot_to_rule[low.bit_length() - 1], position))
                        bits ^= low
                    if self.pop_on_final:
                        active[state] = mask & ~hit
        self._active = active
        self._offset = position
        self._matches |= new_matches
        return new_matches

    def feed_mapping(self, mapping: ChunkMapping) -> set[tuple[int, int]]:
        """Splice in a pre-computed chunk mapping (see module docstring).

        Equivalent to ``feed(chunk)`` for the chunk the mapping was
        scanned from — same matches (ε-rules aside, which neither
        returns), same downstream behaviour — but O(state width) at
        splice time: the bytes were already scanned, possibly before
        this matcher even reached them, possibly on another machine
        (mappings pickle; reattachment is signature-checked).
        """
        scanner = self.scanner
        if mapping.scanner is not scanner:
            mapping = scanner.attach(mapping)
        found, exit_activation = scanner.apply(
            mapping, self._active, base=self._offset
        )
        # the live projection is match-equivalent to the full activation
        # (dead bits never move or report), so adopting it keeps every
        # later feed()/feed_mapping() byte-identical to a single shot
        self._active = exit_activation
        self._offset += mapping.length
        self._matches |= found
        return found

    def feed_all(self, chunks: Iterable[bytes | str]) -> set[tuple[int, int]]:
        """Consume an iterable of chunks; returns all matches produced."""
        out: set[tuple[int, int]] = set()
        for chunk in chunks:
            out |= self.feed(chunk)
        return out

    def reset(self) -> None:
        """Forget all state and reported matches; offset returns to 0."""
        self._active = {}
        self._offset = 0
        self._matches = set()
