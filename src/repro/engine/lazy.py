"""Lazy-DFA configuration cache: memoized iMFAnt frontier transitions.

Real streams drive an automaton through a small recurring set of frontier
*configurations* — the ``{state: activation-mask}`` dict the interpretive
iMFAnt backend rebuilds from scratch on every byte.  Because the
activation step is a pure function of ``(configuration, byte)``, the
steady state of a scan can be determinized *on the fly* (the classic
lazy-DFA / subset-construction-at-match-time idea, cf. RE2 and the
"insomnia" cure of Quesada et al.): freeze each frontier into an
interned integer id and memoize

    ``(config_id, byte) -> (next_config_id, emitted-rule slots, …)``

so a warm scan costs one dict lookup per byte instead of one loop over
the symbol's enabled transitions.

The cache is **bounded** (``max_entries``) so adversarial inputs that
keep minting fresh configurations degrade gracefully to interpretive
speed instead of exploding memory.  Two eviction policies:

* ``"flush"`` (default, RE2-style) — when the transition cache is full,
  drop *everything* and re-intern only the live frontier.  O(1) per hot
  step (plain dict), worst-case recompute after a flush.
* ``"lru"`` — evict the least-recently-used transition.  Keeps hot
  entries across cache pressure at the cost of an ``OrderedDict``
  bookkeeping touch per hit; the configuration table is additionally
  bounded by a full flush when it outgrows ``2 * max_entries``.

Every cached entry also stores the step's work counters and every
interned configuration its activation statistics, so a lazy run
reproduces the python backend's :class:`~repro.engine.counters.
ExecutionStats` and strided engine-sampler observations *exactly* —
the cross-backend invariant the engine tests enforce.

Cache activity is surfaced, never fatal: per-run hit/miss/eviction/flush
deltas land on the :mod:`repro.obs` metrics registry (when one is
active) as ``imfant_lazy_cache_*_total`` counters plus an
``imfant_lazy_distinct_configs`` gauge, and cumulative totals are
readable on :attr:`LazyConfigCache.stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.tables import MfsaTables
from repro.guard import faultinject

__all__ = ["DEFAULT_CACHE_SIZE", "EVICTION_POLICIES", "LazyCacheStats", "LazyConfigCache"]

#: Default transition-cache budget (entries, i.e. (config, byte) pairs).
DEFAULT_CACHE_SIZE = 1 << 16

EVICTION_POLICIES = ("flush", "lru")

#: One frozen frontier: sorted ``(state, activation-mask)`` pairs with
#: zero masks dropped (canonical — two equal frontiers intern equal).
_Config = tuple


@dataclass
class LazyCacheStats:
    """Cumulative cache activity (monotonic across runs)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1]; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "hit_rate": self.hit_rate,
        }


class LazyConfigCache:
    """Bounded memo of frontier transitions for one :class:`MfsaTables`.

    The cache owns all mutable lazy-backend state; the tables it wraps
    are immutable after construction, so several caches can share one
    table set (per-thread caches — see :meth:`IMfantEngine.fork`).

    Entry layout (a plain tuple, unpacked in the hot loop):
    ``(next_config_id, emit_slots, emit_mask, transitions_taken)``.
    Config id ``0`` is always the empty frontier.
    """

    def __init__(
        self,
        tables: MfsaTables,
        pop_on_final: bool = False,
        max_entries: int = DEFAULT_CACHE_SIZE,
        eviction: str = "flush",
    ) -> None:
        if max_entries < 1:
            raise ValueError("lazy cache needs max_entries >= 1")
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {eviction!r}; choose from {EVICTION_POLICIES}"
            )
        pressure = faultinject.value("lazy.cache_pressure")
        if pressure is not None:
            # Injected cache pressure: clamp the budget so eviction/thrash
            # paths exercise without multi-megabyte adversarial inputs.
            max_entries = 1 if pressure is True else max(1, min(max_entries, int(pressure)))
        self.tables = tables
        self.pop_on_final = pop_on_final
        self.max_entries = max_entries
        self.eviction = eviction
        self.stats = LazyCacheStats()
        #: (config_id << 8 | byte) -> entry.  Plain dict under "flush"
        #: (fastest lookups); OrderedDict under "lru" (recency order).
        self.transitions: dict[int, tuple] = OrderedDict() if eviction == "lru" else {}
        #: config id -> frozen (state, mask) pairs
        self._configs: list[_Config] = []
        #: config id -> (active_pair_total, peak_state_activation, width)
        self.config_stats: list[tuple[int, int, int]] = []
        self._ids: dict[_Config, int] = {}
        #: transitions examined per byte — constant per symbol, hoisted
        #: out of the per-step entries
        self.examined_by_byte: list[int] = [len(lst) for lst in tables.by_symbol]
        self._intern(())

    # -- configuration interning ------------------------------------------

    @property
    def num_configs(self) -> int:
        """Distinct frontier configurations currently interned."""
        return len(self._configs)

    def config_id_of(self, active: dict[int, int]) -> int:
        """Intern an explicit frontier dict (id 0 == empty frontier)."""
        return self._intern(tuple(sorted((s, m) for s, m in active.items() if m)))

    def frontier_of(self, config_id: int) -> dict[int, int]:
        """The ``{state: mask}`` frontier a config id stands for."""
        return dict(self._configs[config_id])

    def _intern(self, frozen: _Config) -> int:
        ident = self._ids.get(frozen)
        if ident is None:
            ident = len(self._configs)
            self._ids[frozen] = ident
            self._configs.append(frozen)
            total = 0
            peak = 0
            for _, mask in frozen:
                bits = mask.bit_count()
                total += bits
                if bits > peak:
                    peak = bits
            self.config_stats.append((total, peak, len(frozen)))
        return ident

    # -- eviction ----------------------------------------------------------

    def _flush(self, live_id: int) -> int:
        """Drop every cached transition and configuration except the live
        frontier; returns its re-interned id.  Clears in place so hot-loop
        references to ``transitions`` / ``config_stats`` stay valid."""
        live = self._configs[live_id]
        self.transitions.clear()
        self._ids.clear()
        del self._configs[:]
        del self.config_stats[:]
        self.stats.flushes += 1
        self._intern(())
        return self._intern(live)

    # -- pure transition (no memoization) ---------------------------------

    def compute(self, config_id: int, byte: int) -> tuple:
        """The transition of ``(config_id, byte)`` **without** touching
        the cache: nothing is memoized, nothing is interned, no flush
        can occur.

        Returns ``(next_config_id_or_None, emit_slots, emit_mask,
        transitions_taken)`` — ``next_config_id`` is ``None`` when the
        successor frontier is not (yet) interned.  This is the read-only
        step the dense-tier compiler (:mod:`repro.engine.dense`) uses to
        close the warm config graph without perturbing it.
        """
        frozen, emit_slots, emit_mask, taken = self._transition(config_id, byte)
        return (self._ids.get(frozen), emit_slots, emit_mask, taken)

    def _transition(self, config_id: int, byte: int) -> tuple:
        """One interpretive frontier step: ``(frozen_next, emit_slots,
        emit_mask, taken)`` — pure w.r.t. the cache."""
        tables = self.tables
        init_mask = tables.init_mask
        final_mask = tables.final_mask
        active = dict(self._configs[config_id])
        taken = 0
        nxt: dict[int, int] = {}
        for src, dst, bel in tables.by_symbol[byte]:
            mask = (active.get(src, 0) | init_mask[src]) & bel
            if mask:
                nxt[dst] = nxt.get(dst, 0) | mask
                taken += 1
        emit_mask = 0
        for state, mask in nxt.items():
            hit = mask & final_mask[state]
            if hit:
                emit_mask |= hit
                if self.pop_on_final:
                    nxt[state] = mask & ~hit
        emit_slots: tuple[int, ...] = ()
        if emit_mask:
            slots = []
            bits = emit_mask
            while bits:
                low = bits & -bits
                slots.append(low.bit_length() - 1)
                bits ^= low
            emit_slots = tuple(slots)
        frozen = tuple(sorted((s, m) for s, m in nxt.items() if m))
        return (frozen, emit_slots, emit_mask, taken)

    # -- the miss path -----------------------------------------------------

    def step(self, config_id: int, byte: int) -> tuple:
        """Compute, memoize, and return the transition for a cache miss.

        May flush (``"flush"`` policy, or a ``"lru"`` config-table
        overflow) — the caller's ``config_id`` becomes stale either way,
        but the returned entry's ``next_config_id`` is always valid.
        """
        if len(self.transitions) >= self.max_entries:
            if self.eviction == "flush":
                config_id = self._flush(config_id)
            else:
                self.transitions.popitem(last=False)  # type: ignore[call-arg]
                self.stats.evictions += 1
        if len(self._configs) > 2 * self.max_entries:
            # LRU keeps the transition cache bounded but evicted entries
            # can strand interned configs; a rare full flush bounds those.
            config_id = self._flush(config_id)

        frozen, emit_slots, emit_mask, taken = self._transition(config_id, byte)
        entry = (self._intern(frozen), emit_slots, emit_mask, taken)
        self.transitions[(config_id << 8) | byte] = entry
        return entry
