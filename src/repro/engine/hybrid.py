"""Hybrid ruleset engine: MFSA merging + counting-set outliers.

Real rulesets mix ordinary REs with a few large bounded repeats
(`[^\\n]{200,300}` style).  Expanding the latter bloats — or, past the
expansion budget, poisons — the merged automaton; counting-set execution
handles them in constant space but cannot merge.  The hybrid engine
splits the ruleset the way production matchers do:

* rules whose expanded size stays small compile through the normal
  pipeline and merge into MFSAs (one iMFAnt pass matches them all);
* rules dominated by a large counted repeat run individually on the
  counting-set engine.

Matches from both sides combine into the usual ``(rule_id, end)`` set;
equivalence with the everything-expanded baseline is property-tested
where the baseline is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import repro.obs as obs
from repro.counting.build import build_counting_fsa
from repro.counting.engine import CountingSetEngine
from repro.engine.counters import ExecutionStats
from repro.engine.imfant import IMfantEngine
from repro.engine.lazy import DEFAULT_CACHE_SIZE
from repro.frontend.ast import AstNode, Literal, Repeat
from repro.frontend.parser import parse
from repro.pipeline.compiler import CompileOptions, compile_ruleset

#: A width-1 repeat expanding into more states than this routes the rule
#: to the counting engine.
DEFAULT_COUNTING_THRESHOLD = 32


def rule_needs_counting(pattern: str, threshold: int = DEFAULT_COUNTING_THRESHOLD) -> bool:
    """True when the pattern contains a width-1 bounded repeat whose
    expansion would exceed ``threshold`` states."""
    return any(
        isinstance(node, Repeat)
        and isinstance(node.body, Literal)
        and _expansion_size(node) > threshold
        for node in parse(pattern).walk()
    )


def _expansion_size(node: Repeat) -> int:
    if node.high is not None:
        return node.high
    return node.low


@dataclass
class HybridReport:
    """How the ruleset was split and what each side cost."""

    merged_rules: int = 0
    counting_rules: int = 0
    mfsa_count: int = 0
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: chunk-parallel strategy the merged side ran under ("" = the
    #: sequential run() path; see repro.engine.chunkscan)
    scan_strategy: str = ""


class HybridEngine:
    """Split compile + combined execution (see module docstring).

    ``backend`` passes straight through to the merged side's
    :class:`IMfantEngine`\\ s — any of ``python``/``numpy``/``lazy``/
    ``dense`` (the dense tier auto-promotes per engine once its lazy
    cache runs warm).  The counting side is its own engine and is
    unaffected.
    """

    def __init__(
        self,
        patterns: Sequence[str],
        merging_factor: int = 0,
        counting_threshold: int = DEFAULT_COUNTING_THRESHOLD,
        backend: str = "python",
        lazy_cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.patterns = list(patterns)
        self._counting_ids = [
            rule_id for rule_id, pattern in enumerate(self.patterns)
            if rule_needs_counting(pattern, counting_threshold)
        ]
        counting_set = set(self._counting_ids)
        self._merged_ids = [
            rule_id for rule_id in range(len(self.patterns)) if rule_id not in counting_set
        ]

        # Merged side: compile the regular rules together.  Rule ids are
        # positions within the sub-ruleset; remap back when reporting.
        self._mfsa_engines: list[IMfantEngine] = []
        self._merged_remap: dict[int, int] = {}
        if self._merged_ids:
            sub_patterns = [self.patterns[r] for r in self._merged_ids]
            compiled = compile_ruleset(
                sub_patterns, CompileOptions(merging_factor=merging_factor, emit_anml=False)
            )
            self._merged_remap = dict(enumerate(self._merged_ids))
            self._mfsas = list(compiled.mfsas)
            self._mfsa_engines = [
                IMfantEngine(m, backend=backend, lazy_cache_size=lazy_cache_size)
                for m in compiled.mfsas
            ]
            self._mfsa_count = len(compiled.mfsas)
        else:
            self._mfsas = []
            self._mfsa_count = 0
        self._backend = backend
        self._lazy_cache_size = lazy_cache_size

        # Counting side: one engine per outlier rule.
        self._counting_engines = [
            CountingSetEngine(build_counting_fsa(self.patterns[rule_id]), rule_id)
            for rule_id in self._counting_ids
        ]

    @property
    def counting_rule_ids(self) -> list[int]:
        return list(self._counting_ids)

    def run(self, data: bytes | str) -> tuple[set[tuple[int, int]], HybridReport]:
        report = HybridReport(
            merged_rules=len(self._merged_ids),
            counting_rules=len(self._counting_ids),
            mfsa_count=self._mfsa_count,
        )
        matches: set[tuple[int, int]] = set()
        with obs.span(
            "hybrid.run",
            merged_rules=report.merged_rules,
            counting_rules=report.counting_rules,
            mfsas=report.mfsa_count,
        ) as sp:
            with obs.span("hybrid.merged", engines=len(self._mfsa_engines)):
                for engine in self._mfsa_engines:
                    result = engine.run(data)
                    report.stats.merge(result.stats)
                    matches.update(
                        (self._merged_remap[rule], end) for rule, end in result.matches
                    )
            with obs.span("hybrid.counting", engines=len(self._counting_engines)):
                for engine in self._counting_engines:
                    result = engine.run(data)
                    report.stats.merge(result.stats)
                    matches |= result.matches
            sp.set(matches=len(matches))
        return matches, report

    def run_parallel(
        self,
        data: bytes | str,
        num_threads: int = 4,
        chunk_size: int = 4096,
        scan_strategy: str = "auto",
    ) -> tuple[set[tuple[int, int]], HybridReport]:
        """Chunk-parallel :meth:`run`: the merged side scans through
        :func:`repro.engine.chunkscan.chunk_scan` — overlap chunking for
        width-bounded MFSAs, zero-overlap SFA mappings for unbounded
        ones (``scan_strategy`` as in chunkscan; ``"auto"`` resolves per
        MFSA) — while the counting outliers run sequentially (a counting
        engine's register state does not chunk).  Matches are identical
        to :meth:`run`; per-engine stats are not collected on the
        chunked side (``report.stats`` covers the counting side only).
        """
        from repro.engine.chunkscan import chunk_scan, resolve_strategy

        report = HybridReport(
            merged_rules=len(self._merged_ids),
            counting_rules=len(self._counting_ids),
            mfsa_count=self._mfsa_count,
        )
        matches: set[tuple[int, int]] = set()
        used: set[str] = set()
        with obs.span(
            "hybrid.run_parallel",
            merged_rules=report.merged_rules,
            counting_rules=report.counting_rules,
            mfsas=report.mfsa_count,
            threads=num_threads,
        ) as sp:
            with obs.span("hybrid.merged", engines=len(self._mfsas)):
                for mfsa in self._mfsas:
                    used.add(resolve_strategy(mfsa, scan_strategy))
                    found = chunk_scan(
                        mfsa,
                        data,
                        strategy=scan_strategy,
                        chunk_size=chunk_size,
                        num_threads=num_threads,
                        backend=self._backend,
                        lazy_cache_size=self._lazy_cache_size,
                    )
                    matches.update(
                        (self._merged_remap[rule], end) for rule, end in found
                    )
            with obs.span("hybrid.counting", engines=len(self._counting_engines)):
                for engine in self._counting_engines:
                    result = engine.run(data)
                    report.stats.merge(result.stats)
                    matches |= result.matches
            report.scan_strategy = "+".join(sorted(used))
            sp.set(matches=len(matches), strategy=report.scan_strategy)
        return matches, report
