"""uint64 popcount helpers with a pre-NumPy-2.0 fallback.

The engines count set bits of packed uint64 activation vectors on every
sampled position; ``np.bitwise_count`` does that natively but only
exists since NumPy 2.0, while the project supports ``numpy>=1.23``.
The implementation is selected once at import time:

* NumPy ≥ 2.0 — :func:`np.bitwise_count` (vectorised per-element
  popcount);
* older NumPy — an :func:`np.unpackbits` expansion over a ``uint8``
  view of the limbs (8× memory traffic, still fully vectorised).

Both paths are exercised by ``tests/test_bitops.py`` regardless of the
installed NumPy (the fallback is importable and tested directly).
"""

from __future__ import annotations

import numpy as np

__all__ = ["HAS_NATIVE_POPCOUNT", "popcount_rows", "popcount_total"]

#: True when the running NumPy provides ``np.bitwise_count`` (≥ 2.0).
HAS_NATIVE_POPCOUNT = hasattr(np, "bitwise_count")


def _popcount_rows_native(sv: np.ndarray) -> np.ndarray:
    return np.bitwise_count(sv).sum(axis=1)


def _popcount_total_native(sv: np.ndarray) -> int:
    return int(np.bitwise_count(sv).sum())


def _popcount_rows_unpackbits(sv: np.ndarray) -> np.ndarray:
    bytes_view = np.ascontiguousarray(sv).view(np.uint8).reshape(len(sv), -1)
    return np.unpackbits(bytes_view, axis=1).sum(axis=1, dtype=np.int64)


def _popcount_total_unpackbits(sv: np.ndarray) -> int:
    bytes_view = np.ascontiguousarray(sv).view(np.uint8).ravel()
    return int(np.unpackbits(bytes_view).sum())


if HAS_NATIVE_POPCOUNT:
    popcount_rows = _popcount_rows_native
    popcount_total = _popcount_total_native
else:  # pragma: no cover - exercised only on numpy < 2.0
    popcount_rows = _popcount_rows_unpackbits
    popcount_total = _popcount_total_unpackbits

popcount_rows.__doc__ = """Per-row popcount of a ``(rows, limbs)`` uint64 matrix."""
popcount_total.__doc__ = """Total popcount of a uint64 array (any shape)."""
