"""Execution engines: iNFAnt (single FSA) and iMFAnt (MFSA) (paper §V).

* :mod:`repro.engine.tables` — pre-processing: symbol-indexed transition
  tables (the iNFAnt data structure linking each of the 256 symbols to
  the transitions it enables).
* :mod:`repro.engine.infant` — the baseline iNFAnt engine over one FSA.
* :mod:`repro.engine.imfant` — the iMFAnt engine over an MFSA, pure-Python,
  NumPy-vectorised (the data-parallel GPGPU-style variant), and lazy
  (memoized frontier transitions).
* :mod:`repro.engine.lazy` — the bounded lazy-DFA configuration cache
  behind ``backend="lazy"``.
* :mod:`repro.engine.dense` — the dense compiled-DFA tier above the
  lazy cache (``backend="dense"``): byte-class-compressed transition
  tables, self-loop run skipping with a ``bytes.find`` literal
  prefilter, and mid-buffer de-opt back to lazy interpretation.
* :mod:`repro.engine.counting` — counter registers behind
  ``backend="counting"``: bounded ``{m,n}`` repeats as O(1)-per-byte
  sliding-window counters instead of expanded state chains.
* :mod:`repro.engine.bitops` — uint64 popcount helpers (native
  ``np.bitwise_count`` or a pre-NumPy-2.0 ``np.unpackbits`` fallback).
* :mod:`repro.engine.counters` — execution statistics (work counters).
* :mod:`repro.engine.cost` — the work-based timing model used by the
  thread-scaling experiments.
* :mod:`repro.engine.multithread` — multi-automata scheduling: a real
  thread pool plus a deterministic machine-model simulator.
* :mod:`repro.engine.sfa` — composable chunk mappings (simultaneous run
  from every entry state): exact zero-overlap data parallelism for any
  ruleset (docs/parallelism.md).
* :mod:`repro.engine.chunkscan` — chunk-parallel scanning over one
  payload: overlap chunking or SFA mappings (``strategy=`` knob).
"""

from repro.engine.counters import ExecutionStats
from repro.engine.dense import DEFAULT_PROMOTE_AFTER, DenseScanOutcome, DenseTier
from repro.engine.infant import INfantEngine
from repro.engine.imfant import IMfantEngine
from repro.engine.lazy import DEFAULT_CACHE_SIZE, LazyCacheStats, LazyConfigCache
from repro.engine.tables import ByteClasses, FsaTables, MfsaTables, byte_classes
from repro.engine.cost import CostModel
from repro.engine.multithread import (
    MachineModel,
    run_pool,
    simulate_parallel_latency,
)
from repro.engine.sfa import ChunkMapping, SfaScanner, fold_mappings

__all__ = [
    "ExecutionStats",
    "INfantEngine",
    "IMfantEngine",
    "LazyCacheStats",
    "LazyConfigCache",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_PROMOTE_AFTER",
    "DenseScanOutcome",
    "DenseTier",
    "ByteClasses",
    "byte_classes",
    "FsaTables",
    "MfsaTables",
    "CostModel",
    "MachineModel",
    "run_pool",
    "simulate_parallel_latency",
    "ChunkMapping",
    "SfaScanner",
    "fold_mappings",
]
