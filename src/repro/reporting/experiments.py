"""Shared experiment harnesses behind the per-figure benchmarks.

Each ``experiment_*`` function reproduces the data behind one table or
figure of the paper's evaluation (§VI); the benchmark modules under
``benchmarks/`` are thin wrappers that run these and print the rows.
See DESIGN.md §4 for the experiment index.

Scaling: ``ExperimentConfig.scale`` divides the suite size (the paper's
C++/-O3 engine is ~10³× faster than interpretive Python), and
``stream_size`` replaces the paper's 1 MB input.  Shapes — who wins, by
what factor, where the optima fall — are preserved; EXPERIMENTS.md
records the exact configuration next to every paper-vs-measured number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.datasets import DATASET_PROFILES, generate_ruleset, generate_stream
from repro.datasets.synthetic import Ruleset
from repro.engine.cost import CostModel, throughput
from repro.engine.counters import ExecutionStats
from repro.engine.imfant import IMfantEngine
from repro.engine.multithread import MachineModel, simulate_parallel_latency
from repro.pipeline.compiler import CompilationResult, CompileOptions, compile_ruleset
from repro.similarity import average_pairwise_similarity

#: The paper's merging-factor sweep; 0 encodes "all".
PAPER_MERGING_FACTORS = (1, 2, 5, 10, 20, 50, 100, 0)

#: The paper's thread sweep (1–128 on a 4C/8T machine).
PAPER_THREAD_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared experiment parameters."""

    datasets: tuple[str, ...] = tuple(DATASET_PROFILES)
    #: divide suite sizes by this factor (1 = paper-scale rulesets)
    scale: int = 6
    #: input stream bytes (the paper uses 1 MB)
    stream_size: int = 4096
    merging_factors: tuple[int, ...] = PAPER_MERGING_FACTORS
    threads: tuple[int, ...] = PAPER_THREAD_SWEEP
    engine_backend: str = "python"
    cost_model: CostModel = field(default_factory=CostModel)
    machine: MachineModel = field(default_factory=MachineModel)

    def factors_for(self, num_res: int) -> list[int]:
        """Drop factors larger than the suite (they alias with 'all')."""
        kept = [m for m in self.merging_factors if 0 < m < num_res]
        if 0 in self.merging_factors or any(m >= num_res for m in self.merging_factors if m):
            kept.append(0)
        return kept


@dataclass
class DatasetBundle:
    """One dataset's generated material plus per-M compilations (cached)."""

    abbr: str
    ruleset: Ruleset
    stream: bytes
    compilations: dict[int, CompilationResult] = field(default_factory=dict)

    def compiled(self, merging_factor: int, **option_overrides) -> CompilationResult:
        key = merging_factor
        if option_overrides:
            # Non-default options are not cached (ablations build their own).
            options = CompileOptions(merging_factor=merging_factor, **option_overrides)
            return compile_ruleset(self.ruleset.patterns, options)
        if key not in self.compilations:
            options = CompileOptions(merging_factor=merging_factor, emit_anml=False)
            self.compilations[key] = compile_ruleset(self.ruleset.patterns, options)
        return self.compilations[key]


@lru_cache(maxsize=None)
def _bundle_cached(abbr: str, scale: int, stream_size: int) -> DatasetBundle:
    profile = DATASET_PROFILES[abbr].scaled(scale)
    ruleset = generate_ruleset(profile)
    stream = generate_stream(ruleset, stream_size)
    return DatasetBundle(abbr=abbr, ruleset=ruleset, stream=stream)


def dataset_bundle(abbr: str, config: ExperimentConfig) -> DatasetBundle:
    """Generated suite + stream for one dataset at the config's scale.

    Cached process-wide: benchmarks for different figures share the
    compilations.
    """
    return _bundle_cached(abbr, config.scale, config.stream_size)


# ---------------------------------------------------------------------------
# Fig. 1 — INDEL similarity
# ---------------------------------------------------------------------------


def experiment_similarity(config: ExperimentConfig, max_pairs: int | None = 2000) -> dict[str, float]:
    """Average normalised INDEL similarity per dataset (Fig. 1)."""
    out: dict[str, float] = {}
    for abbr in config.datasets:
        bundle = dataset_bundle(abbr, config)
        out[abbr] = average_pairwise_similarity(bundle.ruleset.literal_cores, max_pairs=max_pairs)
    return out


# ---------------------------------------------------------------------------
# Table I — dataset characteristics
# ---------------------------------------------------------------------------


def experiment_dataset_stats(config: ExperimentConfig) -> dict[str, dict[str, float]]:
    """#REs, total/average states and transitions, total CC length."""
    out: dict[str, dict[str, float]] = {}
    for abbr in config.datasets:
        bundle = dataset_bundle(abbr, config)
        fsas = bundle.compiled(1).fsas
        num = len(fsas)
        total_states = sum(f.num_states for f in fsas)
        total_trans = sum(f.num_transitions for f in fsas)
        total_cc = sum(f.total_cc_length() for f in fsas)
        out[abbr] = {
            "num_res": num,
            "total_states": total_states,
            "total_transitions": total_trans,
            "total_cc_length": total_cc,
            "avg_states": total_states / num,
            "avg_transitions": total_trans / num,
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 7 — compression vs merging factor
# ---------------------------------------------------------------------------


def experiment_compression(config: ExperimentConfig) -> dict[str, dict[int, tuple[float, float]]]:
    """Per dataset, per M: (state compression %, transition compression %)."""
    out: dict[str, dict[int, tuple[float, float]]] = {}
    for abbr in config.datasets:
        bundle = dataset_bundle(abbr, config)
        per_m: dict[int, tuple[float, float]] = {}
        for m in config.factors_for(len(bundle.ruleset)):
            if m == 1:
                continue  # no merging = 0% by definition
            report = bundle.compiled(m).merge_report
            per_m[m] = (report.state_compression, report.transition_compression)
        out[abbr] = per_m
    return out


# ---------------------------------------------------------------------------
# Fig. 8 — compilation-stage times
# ---------------------------------------------------------------------------


def experiment_compilation_time(
    config: ExperimentConfig, repetitions: int = 1, aggregate: str = "mean"
) -> dict[str, dict[int, dict[str, float]]]:
    """Per dataset, per M: stage-name → seconds over ``repetitions`` runs.

    ``aggregate`` is "mean" (the paper averages 30 runs) or "min" (robust
    to scheduler noise; used by shape assertions).  Uses fresh (uncached)
    compilations including the ANML back-end so all five stages are
    measured.
    """
    if aggregate not in ("mean", "min"):
        raise ValueError(f"unknown aggregate {aggregate!r}")
    out: dict[str, dict[int, dict[str, float]]] = {}
    for abbr in config.datasets:
        bundle = dataset_bundle(abbr, config)
        per_m: dict[int, dict[str, float]] = {}
        for m in config.factors_for(len(bundle.ruleset)):
            samples: dict[str, list[float]] = {}
            for _ in range(repetitions):
                result = compile_ruleset(
                    bundle.ruleset.patterns, CompileOptions(merging_factor=m, emit_anml=True)
                )
                for stage, seconds in result.stage_times.as_dict().items():
                    samples.setdefault(stage, []).append(seconds)
            if aggregate == "mean":
                per_m[m] = {stage: sum(vals) / len(vals) for stage, vals in samples.items()}
            else:
                per_m[m] = {stage: min(vals) for stage, vals in samples.items()}
        out[abbr] = per_m
    return out


# ---------------------------------------------------------------------------
# Execution experiments (Figs. 9, 10 and Table II)
# ---------------------------------------------------------------------------


def _run_stats(bundle: DatasetBundle, merging_factor: int, config: ExperimentConfig) -> list[ExecutionStats]:
    """Execute every MFSA of the configuration over the stream; one
    ExecutionStats per MFSA (counters + wall time)."""
    result = bundle.compiled(merging_factor)
    stats: list[ExecutionStats] = []
    for mfsa in result.mfsas:
        engine = IMfantEngine(mfsa, backend=config.engine_backend)
        stats.append(engine.run(bundle.stream).stats)
    return stats


@lru_cache(maxsize=None)
def _stats_cached(abbr: str, m: int, scale: int, stream_size: int, backend: str) -> tuple:
    config = ExperimentConfig(scale=scale, stream_size=stream_size, engine_backend=backend)
    bundle = dataset_bundle(abbr, config)
    return tuple(_run_stats(bundle, m, config))


def execution_stats(abbr: str, merging_factor: int, config: ExperimentConfig) -> list[ExecutionStats]:
    """Cached per-MFSA execution statistics for one (dataset, M)."""
    return list(
        _stats_cached(abbr, merging_factor, config.scale, config.stream_size, config.engine_backend)
    )


def experiment_throughput(config: ExperimentConfig) -> dict[str, dict[int, dict[str, float]]]:
    """Fig. 9: per dataset, per M — single-thread execution time (modelled
    work units and measured seconds), throughput, and improvement vs M=1."""
    out: dict[str, dict[int, dict[str, float]]] = {}
    for abbr in config.datasets:
        bundle = dataset_bundle(abbr, config)
        num_rules = len(bundle.ruleset)
        per_m: dict[int, dict[str, float]] = {}
        baseline_work: float | None = None
        for m in config.factors_for(num_rules):
            stats = execution_stats(abbr, m, config)
            work = config.cost_model.total_cost(stats)
            wall = sum(s.wall_seconds or 0.0 for s in stats)
            if m == 1:
                baseline_work = work
            per_m[m] = {
                "work": work,
                "wall_seconds": wall,
                "throughput": throughput(num_rules, config.stream_size, work),
            }
        assert baseline_work is not None, "merging_factors must include 1 for Fig. 9"
        for m, row in per_m.items():
            row["improvement"] = baseline_work / row["work"]
        out[abbr] = per_m
    return out


def experiment_scaling(config: ExperimentConfig) -> dict[str, dict[int, dict[int, float]]]:
    """Fig. 10: per dataset, per M, per thread count — simulated latency
    (work units) of dynamic scheduling on the machine model."""
    out: dict[str, dict[int, dict[int, float]]] = {}
    for abbr in config.datasets:
        bundle = dataset_bundle(abbr, config)
        per_m: dict[int, dict[int, float]] = {}
        for m in config.factors_for(len(bundle.ruleset)):
            works = [config.cost_model.run_cost(s) for s in execution_stats(abbr, m, config)]
            per_m[m] = {
                t: simulate_parallel_latency(works, t, config.machine) for t in config.threads
            }
        out[abbr] = per_m
    return out


def scaling_summary(per_m: dict[int, dict[int, float]]) -> dict[str, float]:
    """Fig. 10 highlight markers for one dataset: best multi-threaded M=1
    latency, best M>1 latency, their speedup, and the least thread count
    at which some M>1 configuration reaches the M=1 best latency."""
    best_single = min(per_m[1].values())
    best_multi = min(
        latency for m, series in per_m.items() if m != 1 for latency in series.values()
    )
    threads_needed = None
    for t in sorted(next(iter(per_m.values())).keys()):
        if any(series[t] <= best_single for m, series in per_m.items() if m != 1):
            threads_needed = t
            break
    return {
        "best_single_fsa_latency": best_single,
        "best_mfsa_latency": best_multi,
        "speedup": best_single / best_multi,
        "mfsa_threads_to_match_single": threads_needed if threads_needed is not None else float("nan"),
    }


def experiment_active_sets(config: ExperimentConfig) -> dict[str, dict[str, float]]:
    """Table II: average and max active-set statistics at M=all."""
    out: dict[str, dict[str, float]] = {}
    for abbr in config.datasets:
        stats = execution_stats(abbr, 0, config)
        merged = ExecutionStats()
        for s in stats:
            merged.merge(s)
        chars = max(1, stats[0].chars_processed if stats else 1)
        out[abbr] = {
            "avg_active": merged.active_pair_total / chars,
            "max_active": merged.max_state_activation,
        }
    return out
