"""Memory-footprint estimation for the automata representations.

The paper frames compression as "a metric directly impacting the
representation of the FSAs, hence their memory footprint" (§VI-A).
This module turns structure counts into comparable byte estimates using
one consistent storage model:

* **NFA / MFSA (COO)** — per transition: 4-byte ``row`` + 4-byte ``col``
  + label (1 byte for a single character, a 32-byte bitmap for a CC —
  the two label encodings the paper's COO carries); MFSA transitions add
  a ⌈|R|/8⌉-byte belonging bitmap; per rule: 4 bytes initial + 4 bytes
  per final state.
* **DFA** — the classic full table: 4 bytes × 256 per state, plus accept
  bitmaps.
* **D2FA** — per stored entry: 1-byte symbol + 4-byte target; per
  non-root state a 4-byte default pointer.
* **2-stride DFA** — 4 bytes per pair-table entry + the 256-byte class
  map.

These are *models*, not measured heap sizes — their value is relative
comparison on equal terms, as used by the footprint benchmarks.
"""

from __future__ import annotations

from repro.automata.fsa import Fsa
from repro.dfa.d2fa import D2fa
from repro.dfa.dfa import Dfa
from repro.dfa.multistride import StrideDfa
from repro.mfsa.model import Mfsa

_PTR = 4  # bytes per state reference
_CC_BITMAP = 32  # 256-bit character-class bitmap
_CHAR = 1


def _label_bytes(single: bool) -> int:
    return _CHAR if single else _CC_BITMAP


def fsa_memory(fsa: Fsa) -> int:
    """COO bytes of one plain ε-free FSA."""
    total = _PTR  # initial state
    total += _PTR * len(fsa.finals)
    for t in fsa.labelled_transitions():
        total += 2 * _PTR + _label_bytes(t.label.is_single())  # type: ignore[union-attr]
    return total


def ruleset_memory(fsas: list[Fsa]) -> int:
    """Total bytes of an unmerged FSA set (the M=1 baseline)."""
    return sum(fsa_memory(fsa) for fsa in fsas)


def mfsa_memory(mfsa: Mfsa) -> int:
    """COO bytes of one MFSA, including belonging bitmaps and rule table."""
    bel_bytes = (mfsa.num_rules + 7) // 8
    total = 0
    for t in mfsa.transitions:
        total += 2 * _PTR + _label_bytes(t.label.is_single()) + bel_bytes
    for rule in mfsa.initials:
        total += _PTR + _PTR * len(mfsa.finals[rule])
    return total


def dfa_memory(dfa: Dfa) -> int:
    """Full-table DFA bytes (4 B × 256 per state + accept bitmaps)."""
    rules = len(dfa.rule_ids())
    accept_bytes = max(1, (rules + 7) // 8)
    return dfa.num_states * (256 * _PTR + accept_bytes)


def d2fa_memory(d2fa: D2fa) -> int:
    """Default-transition-compressed DFA bytes."""
    total = 0
    for row in d2fa.sparse:
        total += len(row) * (_CHAR + _PTR)
    total += sum(_PTR for d in d2fa.default if d is not None)
    rules = {r for accept in d2fa.accepts for r in accept}
    accept_bytes = max(1, (len(rules) + 7) // 8)
    total += d2fa.num_states * accept_bytes
    return total


def stride2_memory(stride: StrideDfa) -> int:
    """2-stride DFA bytes: pair table + byte→class map."""
    return stride.table_entries * _PTR + 256


def footprint_summary(
    fsas: list[Fsa],
    mfsa: Mfsa,
    dfa: Dfa | None = None,
    d2fa: D2fa | None = None,
) -> dict[str, int]:
    """Byte estimates for every available representation of one ruleset."""
    out = {
        "fsa_set": ruleset_memory(fsas),
        "mfsa": mfsa_memory(mfsa),
    }
    if dfa is not None:
        out["dfa"] = dfa_memory(dfa)
    if d2fa is not None:
        out["d2fa"] = d2fa_memory(d2fa)
    return out
