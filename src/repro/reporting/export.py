"""Raw-result export: CSV/JSON series for every reproduced table/figure.

The paper's artifact emits raw results plus charts; this module writes
the reproduced data in machine-readable form so downstream plotting
(matplotlib, gnuplot, spreadsheets) can regenerate the figures without
re-running the experiments.  One file per experiment, under a target
directory:

    fig1_similarity.csv       dataset, similarity
    table1_datasets.csv       dataset, num_res, ...
    fig7_compression.csv      dataset, merging_factor, states_pct, transitions_pct
    fig8_compilation.csv      dataset, merging_factor, stage, seconds
    fig9_throughput.csv       dataset, merging_factor, work, wall_seconds, throughput, improvement
    fig10_scaling.csv         dataset, merging_factor, threads, latency
    table2_active.csv         dataset, avg_active, max_active
    manifest.json             configuration + file index
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path

from repro.reporting.experiments import (
    ExperimentConfig,
    experiment_active_sets,
    experiment_compilation_time,
    experiment_compression,
    experiment_dataset_stats,
    experiment_scaling,
    experiment_similarity,
    experiment_throughput,
)


def export_all(config: ExperimentConfig, target: Path | str) -> list[Path]:
    """Run every experiment and write its CSV; returns the files written."""
    target = Path(target)
    target.mkdir(parents=True, exist_ok=True)
    written = [
        export_fig1(config, target),
        export_table1(config, target),
        export_fig7(config, target),
        export_fig8(config, target),
        export_fig9(config, target),
        export_fig10(config, target),
        export_table2(config, target),
    ]
    manifest = target / "manifest.json"
    manifest.write_text(json.dumps({
        "config": {
            "datasets": list(config.datasets),
            "scale": config.scale,
            "stream_size": config.stream_size,
            "merging_factors": list(config.merging_factors),
            "threads": list(config.threads),
            "engine_backend": config.engine_backend,
            "cost_model": asdict(config.cost_model),
            "machine": asdict(config.machine),
        },
        "files": [path.name for path in written],
    }, indent=2) + "\n")
    written.append(manifest)
    return written


def _write_csv(path: Path, header: list[str], rows: list[list]) -> Path:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def _m_label(m: int) -> str:
    return "all" if m == 0 else str(m)


def export_fig1(config: ExperimentConfig, target: Path) -> Path:
    data = experiment_similarity(config)
    return _write_csv(
        target / "fig1_similarity.csv",
        ["dataset", "avg_indel_similarity"],
        [[abbr, f"{value:.6f}"] for abbr, value in data.items()],
    )


def export_table1(config: ExperimentConfig, target: Path) -> Path:
    data = experiment_dataset_stats(config)
    return _write_csv(
        target / "table1_datasets.csv",
        ["dataset", "num_res", "total_states", "total_transitions",
         "total_cc_length", "avg_states", "avg_transitions"],
        [
            [abbr, int(s["num_res"]), int(s["total_states"]), int(s["total_transitions"]),
             int(s["total_cc_length"]), f"{s['avg_states']:.4f}", f"{s['avg_transitions']:.4f}"]
            for abbr, s in data.items()
        ],
    )


def export_fig7(config: ExperimentConfig, target: Path) -> Path:
    data = experiment_compression(config)
    rows = []
    for abbr, per_m in data.items():
        for m, (states, transitions) in per_m.items():
            rows.append([abbr, _m_label(m), f"{states:.4f}", f"{transitions:.4f}"])
    return _write_csv(
        target / "fig7_compression.csv",
        ["dataset", "merging_factor", "states_pct", "transitions_pct"],
        rows,
    )


def export_fig8(config: ExperimentConfig, target: Path) -> Path:
    data = experiment_compilation_time(config)
    rows = []
    for abbr, per_m in data.items():
        for m, stages in per_m.items():
            for stage, seconds in stages.items():
                rows.append([abbr, _m_label(m), stage, f"{seconds:.6f}"])
    return _write_csv(
        target / "fig8_compilation.csv",
        ["dataset", "merging_factor", "stage", "seconds"],
        rows,
    )


def export_fig9(config: ExperimentConfig, target: Path) -> Path:
    data = experiment_throughput(config)
    rows = []
    for abbr, per_m in data.items():
        for m, row in per_m.items():
            rows.append([
                abbr, _m_label(m), f"{row['work']:.2f}", f"{row['wall_seconds']:.6f}",
                f"{row['throughput']:.2f}", f"{row['improvement']:.4f}",
            ])
    return _write_csv(
        target / "fig9_throughput.csv",
        ["dataset", "merging_factor", "work", "wall_seconds", "throughput", "improvement"],
        rows,
    )


def export_fig10(config: ExperimentConfig, target: Path) -> Path:
    data = experiment_scaling(config)
    rows = []
    for abbr, per_m in data.items():
        for m, series in per_m.items():
            for threads, latency in series.items():
                rows.append([abbr, _m_label(m), threads, f"{latency:.2f}"])
    return _write_csv(
        target / "fig10_scaling.csv",
        ["dataset", "merging_factor", "threads", "latency"],
        rows,
    )


def export_table2(config: ExperimentConfig, target: Path) -> Path:
    data = experiment_active_sets(config)
    return _write_csv(
        target / "table2_active.csv",
        ["dataset", "avg_active", "max_active"],
        [[abbr, f"{row['avg_active']:.4f}", int(row["max_active"])] for abbr, row in data.items()],
    )
