"""Terminal plotting: ASCII bar charts and line series.

The paper's artifact renders PDF charts with matplotlib; this offline
reproduction renders the same figures as Unicode/ASCII plots so
``repro-report`` output is self-contained.  Two primitives cover all the
figures:

* :func:`bar_chart` — grouped horizontal bars (Figs. 1, 7, 9);
* :func:`line_chart` — multi-series log-friendly lines over a shared
  x-axis (Figs. 8, 10).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_BAR = "█"
_HALF = "▌"
_MARKERS = "ox+*#@%&"


def bar_chart(
    values: Mapping[str, float],
    title: str | None = None,
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart; one row per labelled value."""
    if not values:
        return title or ""
    peak = max(values.values())
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        filled = 0 if peak <= 0 else value / peak * width
        bar = _BAR * int(filled) + (_HALF if filled - int(filled) >= 0.5 else "")
        lines.append(f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    series: Mapping[str, Mapping[str, float]],
    title: str | None = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Bars grouped by outer key (dataset), one row per inner key (e.g. M)."""
    lines = [title] if title else []
    peak = max(
        (value for inner in series.values() for value in inner.values()), default=0.0
    )
    for group, inner in series.items():
        lines.append(f"{group}:")
        label_width = max(len(str(k)) for k in inner)
        for label, value in inner.items():
            filled = 0 if peak <= 0 else value / peak * width
            bar = _BAR * int(filled) + (_HALF if filled - int(filled) >= 0.5 else "")
            lines.append(f"  {str(label).rjust(label_width)} |{bar.ljust(width)}| "
                         f"{value:.3g}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str | None = None,
    width: int = 56,
    height: int = 14,
    log_y: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character canvas.

    Each series is a list of (x, y) points; series are distinguished by
    marker characters with a legend underneath.  ``log_y`` plots log10(y)
    (the scale of the paper's Figs. 8 and 10).
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title or ""

    def ty(y: float) -> float:
        return math.log10(max(y, 1e-12)) if log_y else y

    xs = [x for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((ty(y) - y_lo) / y_span * (height - 1))
            canvas[height - 1 - row][col] = marker

    lines = [title] if title else []
    top_label = f"{10 ** y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    bottom_label = f"{10 ** y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    gutter = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(canvas):
        label = top_label if row_index == 0 else (
            bottom_label if row_index == height - 1 else "")
        lines.append(f"{label.rjust(gutter)} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(" " * gutter + f"  {x_lo:g}" + f"{x_hi:g}".rjust(width - len(f"{x_lo:g}")))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)
