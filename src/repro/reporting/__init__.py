"""Result formatting and shared experiment harnesses for the benchmarks."""

from repro.reporting.tables import format_table, geometric_mean
from repro.reporting.experiments import (
    ExperimentConfig,
    dataset_bundle,
    experiment_active_sets,
    experiment_compilation_time,
    experiment_compression,
    experiment_dataset_stats,
    experiment_scaling,
    experiment_similarity,
    experiment_throughput,
)

__all__ = [
    "format_table",
    "geometric_mean",
    "ExperimentConfig",
    "dataset_bundle",
    "experiment_active_sets",
    "experiment_compilation_time",
    "experiment_compression",
    "experiment_dataset_stats",
    "experiment_scaling",
    "experiment_similarity",
    "experiment_throughput",
]
