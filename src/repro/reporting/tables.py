"""Plain-text table rendering and small statistics helpers."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Render an aligned ASCII table (numbers right-aligned)."""
    materialised = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(text.rjust(widths[i]) for i, text in enumerate(cells))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (the paper's summary statistic)."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
