"""Paper-band comparison: measured values against the paper's figures.

EXPERIMENTS.md reports paper-vs-measured prose; this module makes the
comparison machine-checkable.  :data:`PAPER_HEADLINES` records the
numbers the paper states (§VI / abstract) together with the acceptance
band this reproduction targets (shape, not absolute identity), and
:func:`compare_headlines` evaluates a measured set against them —
used by ``scripts/run_full_reproduction.py`` and the release test.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperValue:
    """One headline number with its acceptance band."""

    key: str
    description: str
    paper: float
    lo: float
    hi: float
    unit: str = ""

    def in_band(self, measured: float) -> bool:
        return self.lo <= measured <= self.hi


#: The paper's headline results and the bands this reproduction accepts.
#: Bands are wide on purpose: the substrate is synthetic and the engine
#: interpretive; what must hold is the *conclusion*, not the digit.
PAPER_HEADLINES: dict[str, PaperValue] = {
    value.key: value
    for value in (
        PaperValue(
            key="state_compression",
            description="avg state compression at M=all",
            paper=71.95, lo=55.0, hi=95.0, unit="%",
        ),
        PaperValue(
            key="transition_compression",
            description="avg transition compression at M=all",
            paper=38.88, lo=30.0, hi=75.0, unit="%",
        ),
        PaperValue(
            key="best_throughput_geomean",
            description="geomean best-M single-thread throughput improvement",
            paper=5.99, lo=2.0, hi=20.0, unit="x",
        ),
        PaperValue(
            key="multithread_speedup_geomean",
            description="geomean best-MFSA vs best multi-threaded single-FSA speedup",
            paper=4.05, lo=1.5, hi=12.0, unit="x",
        ),
        PaperValue(
            key="threads_to_match_max",
            description="max threads an MFSA needs to reach the single-FSA best",
            paper=2, lo=1, hi=4,
        ),
    )
}


@dataclass(frozen=True)
class Comparison:
    key: str
    description: str
    paper: float
    measured: float
    unit: str
    ok: bool

    def render(self) -> str:
        flag = "ok " if self.ok else "OUT"
        return (f"[{flag}] {self.description}: measured {self.measured:.2f}{self.unit} "
                f"(paper {self.paper:.2f}{self.unit})")


def compare_headlines(measured: dict[str, float]) -> list[Comparison]:
    """Evaluate measured headline values against the paper bands.

    Unknown keys raise; missing keys are simply not compared (partial
    reproductions are legitimate).
    """
    unknown = set(measured) - set(PAPER_HEADLINES)
    if unknown:
        raise KeyError(f"unknown headline keys: {sorted(unknown)}")
    out = []
    for key, value in measured.items():
        spec = PAPER_HEADLINES[key]
        out.append(Comparison(
            key=key,
            description=spec.description,
            paper=spec.paper,
            measured=value,
            unit=spec.unit,
            ok=spec.in_band(value),
        ))
    return out


def all_in_band(measured: dict[str, float]) -> bool:
    return all(c.ok for c in compare_headlines(measured))
