"""Extended-ANML reader: XML → executable transition-form MFSA.

This is the front half of iMFAnt's pre-processing (paper §V: "conversion
into an iMFAnt-compliant structure is part of the algorithm
pre-processing"): the homogeneous STE network is folded back into the
transition-labelled MFSA the engine tables are built from, using the
``original-state`` annotations and the rule table the writer embeds.

The reconstruction is exact: ``read_anml(write_anml(z))`` equals ``z`` up
to transition order (tested).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.frontend.lexer import tokenize, TokenKind
from repro.guard.errors import FormatError
from repro.labels import CharClass
from repro.mfsa.model import Mfsa


class AnmlFormatError(FormatError, ValueError):
    """Raised when the XML is not valid extended ANML.

    A :class:`~repro.guard.errors.FormatError` in the taxonomy; keeps
    its historical :class:`ValueError` base."""

    default_stage = "anml"


def read_anml(text: str) -> Mfsa:
    """Parse an extended-ANML document back into an MFSA."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise AnmlFormatError(f"malformed XML: {exc}") from exc
    if root.tag != "automata-network":
        raise AnmlFormatError(f"expected <automata-network>, got <{root.tag}>")

    num_states = int(root.get("original-states", "0"))
    mfsa = Mfsa(num_states=num_states)

    rules_el = root.find("rules")
    if rules_el is None:
        raise AnmlFormatError("missing <rules> table")
    for rule_el in rules_el.findall("rule"):
        rule = int(_require(rule_el, "id"))
        mfsa.initials[rule] = int(_require(rule_el, "initial-state"))
        mfsa.finals[rule] = {int(v) for v in _require(rule_el, "final-states").split()}
        pattern = rule_el.get("pattern")
        if pattern is not None:
            mfsa.patterns[rule] = pattern

    # STE id -> (original state, symbol set)
    ste_state: dict[str, int] = {}
    ste_label: dict[str, CharClass] = {}
    for ste_el in root.findall("state-transition-element"):
        ste_id = _require(ste_el, "id")
        ste_state[ste_id] = int(_require(ste_el, "original-state"))
        ste_label[ste_id] = _parse_symbol_set(_require(ste_el, "symbol-set"))

    arcs: dict[tuple[int, int, int], frozenset[int]] = {}
    order: list[tuple[int, int, int]] = []
    for ste_el in root.findall("state-transition-element"):
        ste_id = _require(ste_el, "id")
        # Extension records: arcs whose source state has no STE split.
        for start_arc in ste_el.findall("start-on-input"):
            bel = frozenset(int(v) for v in _require(start_arc, "belongs-to").split())
            key = (int(_require(start_arc, "from-state")), ste_state[ste_id], ste_label[ste_id].mask)
            if key not in arcs:
                arcs[key] = bel
                order.append(key)
            elif arcs[key] != bel:
                raise AnmlFormatError(f"conflicting belongs-to for start arc {key}")
        src_state = ste_state[ste_id]
        for conn in ste_el.findall("activate-on-match"):
            dst_id = _require(conn, "element")
            if dst_id not in ste_state:
                raise AnmlFormatError(f"connection to unknown element {dst_id!r}")
            bel = frozenset(int(v) for v in _require(conn, "belongs-to").split())
            key = (src_state, ste_state[dst_id], ste_label[dst_id].mask)
            if key in arcs:
                if arcs[key] != bel:
                    raise AnmlFormatError(f"conflicting belongs-to for arc {key}")
            else:
                arcs[key] = bel
                order.append(key)

    for src, dst, mask in order:
        mfsa.add_transition(src, dst, CharClass(mask), arcs[(src, dst, mask)])
    mfsa.validate()
    return mfsa


def _require(element: ET.Element, attr: str) -> str:
    value = element.get(attr)
    if value is None:
        raise AnmlFormatError(f"<{element.tag}> missing required attribute {attr!r}")
    return value


def _parse_symbol_set(text: str) -> CharClass:
    """Parse a symbol-set rendered by :meth:`CharClass.pattern` (a single
    character, an escape, ``.`` or a bracket expression) via the ERE lexer."""
    tokens = tokenize(text)
    if len(tokens) != 2:  # symbol + END
        raise AnmlFormatError(f"symbol-set is not a single class: {text!r}")
    token = tokens[0]
    if token.kind is TokenKind.CHAR:
        return CharClass.single(token.value)  # type: ignore[arg-type]
    if token.kind is TokenKind.CHARCLASS:
        assert isinstance(token.value, CharClass)
        return token.value
    raise AnmlFormatError(f"symbol-set is not a character class: {text!r}")
