"""Extended-ANML XML writer (paper §IV-E).

The output follows ANML's element vocabulary —
``<automata-network>``, ``<state-transition-element>``,
``<activate-on-match>``, ``<report-on-match>`` — with the paper's
extension carried in a dedicated namespace-free attribute set:

* ``belongs-to`` on ``<activate-on-match>`` — the merged-rule identifiers
  the connection (transition) belongs to;
* ``start-for`` on STEs — the rules for which the STE begins a match
  (instead of plain ``start="all-input"``, which cannot say *which* rule
  becomes active);
* ``report-for`` on ``<report-on-match>`` — the rules a reached STE
  reports for (the activation function picks the active subset);
* ``original-state`` on STEs and a ``<rule>`` table — enough to
  reconstruct the exact transition-form MFSA (see
  :mod:`repro.anml.reader`).

Symbol sets use the bracket-expression syntax ANML shares with EREs.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.anml.homogenize import HomogeneousNetwork, homogenize
from repro.mfsa.model import Mfsa

FORMAT_VERSION = "1.0"


def write_anml(mfsa: Mfsa, network_id: str = "mfsa") -> str:
    """Serialise an MFSA to the extended-ANML XML string."""
    network = homogenize(mfsa)
    return render_network(network, network_id)


def render_network(network: HomogeneousNetwork, network_id: str = "mfsa") -> str:
    root = ET.Element(
        "automata-network",
        {
            "id": network_id,
            "extended-mfsa-version": FORMAT_VERSION,
            "original-states": str(network.num_original_states),
        },
    )

    rules_el = ET.SubElement(root, "rules")
    for rule, (initial, finals, pattern) in sorted(network.rules.items()):
        attrs = {
            "id": str(rule),
            "initial-state": str(initial),
            "final-states": _ids(finals),
        }
        if pattern is not None:
            attrs["pattern"] = pattern
        ET.SubElement(rules_el, "rule", attrs)

    outgoing: dict[int, list] = {}
    for conn in network.connections:
        outgoing.setdefault(conn.src, []).append(conn)
    start_arcs_into: dict[int, list] = {}
    for arc in network.start_arcs:
        start_arcs_into.setdefault(arc.dst, []).append(arc)

    for ste in network.stes:
        attrs = {
            "id": f"ste{ste.ste_id}",
            "symbol-set": ste.symbol_set.pattern(),
            "original-state": str(ste.state),
        }
        if ste.start_for:
            attrs["start"] = "all-input"
            attrs["start-for"] = _ids(ste.start_for)
        ste_el = ET.SubElement(root, "state-transition-element", attrs)
        for arc in start_arcs_into.get(ste.ste_id, ()):
            ET.SubElement(
                ste_el,
                "start-on-input",
                {"from-state": str(arc.src_state), "belongs-to": _ids(arc.bel)},
            )
        for conn in outgoing.get(ste.ste_id, ()):
            ET.SubElement(
                ste_el,
                "activate-on-match",
                {"element": f"ste{conn.dst}", "belongs-to": _ids(conn.bel)},
            )
        if ste.report_for:
            ET.SubElement(ste_el, "report-on-match", {"report-for": _ids(ste.report_for)})

    ET.indent(root, space="  ")
    return ET.tostring(root, encoding="unicode") + "\n"


def _ids(values) -> str:
    return " ".join(str(v) for v in sorted(values))
