"""Extended ANML back-end (paper §IV-E).

ANML (Automata Network Markup Language) describes *homogeneous* automata:
state-transition elements (STEs) carry the symbol set and activate each
other through unlabelled connections.  The back-end therefore

1. homogenises the MFSA — every state splits into one STE per distinct
   incoming label (:mod:`repro.anml.homogenize`);
2. writes the network as XML, *extended* (as the paper extends the
   standard) with the belonging sets of each connection plus the rule
   table needed by the activation function
   (:mod:`repro.anml.writer`);
3. reads the format back into an executable MFSA
   (:mod:`repro.anml.reader`), which iMFAnt consumes — this is the
   engine's documented pre-processing step.

The writer records each STE's original MFSA state, so a write/read
round-trip reconstructs the exact transition-form MFSA (tested).
"""

from repro.anml.homogenize import HomogeneousNetwork, homogenize
from repro.anml.writer import write_anml
from repro.anml.reader import read_anml

__all__ = ["HomogeneousNetwork", "homogenize", "write_anml", "read_anml"]
