"""MFSA homogenisation for ANML export.

ANML's state-transition elements (STEs) are Glushkov-style: the *element*
carries the symbol set, and an element matches when (a) an activated
predecessor enabled it — or it is a start element — and (b) the current
symbol belongs to its symbol set.  A transition-labelled automaton maps
onto this by splitting every state into one STE per distinct incoming
label:

* state ``q`` with incoming labels ``L1..Lk`` → STEs ``(q, L1)..(q, Lk)``;
* arc ``p --L--> q`` (belonging ``B``) → a connection from every STE of
  ``p`` to STE ``(q, L)`` carrying ``B`` (the paper's ANML extension);
* arc out of a rule ``j``'s initial state ``q0`` → STE ``(q, L)`` is
  additionally marked *start* for ``j`` (ANML ``start="all-input"``
  semantics: a new match attempt at every offset);
* STE ``(q, L)`` reports for every rule ``j`` with ``q ∈ F_j``.

Homogenisation preserves the matching semantics exactly (integration
tests run iMFAnt on both forms) while each STE stores its original state
id so the reader can reconstruct the transition form losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.labels import CharClass
from repro.mfsa.model import Mfsa


@dataclass
class Ste:
    """One state-transition element of the homogeneous network."""

    ste_id: int
    #: original MFSA state this STE is a split of
    state: int
    symbol_set: CharClass
    #: rules for which this STE begins a match attempt (start-for), i.e.
    #: rules whose initial state is the original source of an incoming arc
    start_for: frozenset[int] = frozenset()
    #: rules for which reaching this STE completes a match (report-for)
    report_for: frozenset[int] = frozenset()


@dataclass
class Connection:
    """Activation edge between STEs, annotated with its belonging set."""

    src: int
    dst: int
    bel: frozenset[int]


@dataclass
class StartArc:
    """An arc whose source state has no STE split (no incoming arcs).

    In pure ANML such arcs exist only as start marks on the destination
    STE; this extension record keeps the original source state and
    belonging set so the reader can reconstruct the arc losslessly.
    """

    src_state: int
    dst: int
    bel: frozenset[int]


@dataclass
class HomogeneousNetwork:
    """The ANML-shaped automaton plus the extension rule table."""

    stes: list[Ste] = field(default_factory=list)
    connections: list[Connection] = field(default_factory=list)
    start_arcs: list[StartArc] = field(default_factory=list)
    #: rule id -> (original initial state, original final states, pattern)
    rules: dict[int, tuple[int, frozenset[int], str | None]] = field(default_factory=dict)
    num_original_states: int = 0


def homogenize(mfsa: Mfsa) -> HomogeneousNetwork:
    """Split states by incoming label and rewire arcs (see module doc)."""
    network = HomogeneousNetwork(num_original_states=mfsa.num_states)
    for rule in mfsa.initials:
        network.rules[rule] = (
            mfsa.initials[rule],
            frozenset(mfsa.finals[rule]),
            mfsa.patterns.get(rule),
        )

    final_rules_of: dict[int, set[int]] = {}
    for rule, states in mfsa.finals.items():
        for state in states:
            final_rules_of.setdefault(state, set()).add(rule)
    initial_rules_of: dict[int, set[int]] = {}
    for rule, state in mfsa.initials.items():
        initial_rules_of.setdefault(state, set()).add(rule)

    # One STE per (destination state, incoming label mask).
    ste_of: dict[tuple[int, int], int] = {}

    def ste_for(state: int, label: CharClass) -> int:
        key = (state, label.mask)
        if key not in ste_of:
            ste_of[key] = len(network.stes)
            network.stes.append(
                Ste(
                    ste_id=ste_of[key],
                    state=state,
                    symbol_set=label,
                    report_for=frozenset(final_rules_of.get(state, ())),
                )
            )
        return ste_of[key]

    # First pass: create destination STEs and mark starts.
    start_marks: dict[int, set[int]] = {}
    for t in mfsa.transitions:
        dst_ste = ste_for(t.dst, t.label)
        initial_rules = initial_rules_of.get(t.src, set())
        starting = t.bel & initial_rules
        if starting:
            start_marks.setdefault(dst_ste, set()).update(starting)
    for ste_id, rules in start_marks.items():
        ste = network.stes[ste_id]
        network.stes[ste_id] = Ste(
            ste_id=ste.ste_id,
            state=ste.state,
            symbol_set=ste.symbol_set,
            start_for=frozenset(rules),
            report_for=ste.report_for,
        )

    # Second pass: connections from every split of src to the dst STE.
    # Arcs whose source has no splits (states with no incoming arcs — in
    # particular pure initial states) become StartArc extension records:
    # in plain ANML they exist only as start marks on the destination.
    splits_of: dict[int, list[int]] = {}
    for (state, _), ste_id in ste_of.items():
        splits_of.setdefault(state, []).append(ste_id)
    seen: set[tuple[int, int]] = set()
    for t in mfsa.transitions:
        dst_ste = ste_for(t.dst, t.label)
        splits = splits_of.get(t.src)
        if not splits:
            network.start_arcs.append(StartArc(t.src, dst_ste, t.bel))
            continue
        for src_ste in splits:
            key = (src_ste, dst_ste)
            if key in seen:
                # Same arc reachable through several splits of src with
                # identical endpoints cannot occur (dst STE keyed by
                # label), but guard against duplicate MFSA arcs anyway.
                continue
            seen.add(key)
            network.connections.append(Connection(src_ste, dst_ste, t.bel))
    return network
