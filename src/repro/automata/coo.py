"""COO (coordinate format) adjacency view of automata (paper Fig. 2).

The merging algorithm manipulates automata through their adjacency matrix
in coordinate format: parallel vectors ``row`` (source state), ``col``
(destination state) and ``idx`` (enabling label).  MFSAs additionally
carry ``bel`` — the set of merged-FSA identifiers each transition belongs
to.

This module provides the plain-FSA view; the MFSA carries its own COO
natively (see :mod:`repro.mfsa.model`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.fsa import Fsa, Transition
from repro.labels import CharClass


@dataclass
class CooMatrix:
    """Parallel COO vectors for one ε-free automaton."""

    row: list[int]
    col: list[int]
    idx: list[CharClass]

    def __len__(self) -> int:
        return len(self.row)

    def transition(self, i: int) -> Transition:
        return Transition(self.row[i], self.col[i], self.idx[i])

    def __iter__(self):
        return (self.transition(i) for i in range(len(self.row)))


def to_coo(fsa: Fsa, sort: bool = True) -> CooMatrix:
    """Extract the COO vectors; ``sort`` orders by (row, col, mask) for a
    canonical layout (the paper's examples list transitions row-major)."""
    if fsa.has_epsilon():
        raise ValueError("COO export requires an ε-free FSA")
    arcs = list(fsa.transitions)
    if sort:
        arcs.sort(key=lambda t: (t.src, t.dst, t.label.mask))  # type: ignore[union-attr]
    return CooMatrix(
        row=[t.src for t in arcs],
        col=[t.dst for t in arcs],
        idx=[t.label for t in arcs],  # type: ignore[misc]
    )


def from_coo(coo: CooMatrix, num_states: int, initial: int, finals: set[int]) -> Fsa:
    """Rebuild an FSA from COO vectors (inverse of :func:`to_coo`)."""
    fsa = Fsa(num_states=num_states, initial=initial, finals=set(finals))
    for i in range(len(coo)):
        fsa.add_transition(coo.row[i], coo.col[i], coo.idx[i])
    return fsa
