"""Glushkov (position-automaton) construction: AST → ε-free NFA.

The McNaughton–Yamada/Glushkov construction [37, 45] builds, for an RE
with n symbol occurrences (positions), an automaton with exactly n+1
states and no ε-arcs, where every incoming arc of a position carries
that position's character class — i.e. the automaton is *homogeneous*,
the shape ANML natively expresses (see :mod:`repro.anml.homogenize`).

Provided as an alternative to Thompson construction (+ ε-removal): the
pipeline's ``construction="glushkov"`` option swaps it in, and the
construction ablation bench compares the two on automaton size and
merging effectiveness.  Finite repetition bounds are expanded through
:func:`repro.automata.loops.expand_loops` first, mirroring the paper's
loop-expansion pass.

Implementation: the classic nullable/first/last/follow recursion over
the AST, with positions numbered left to right.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.fsa import Fsa
from repro.automata.loops import expand_loops
from repro.frontend.ast import Alternation, AstNode, Concat, Empty, Literal, Repeat
from repro.labels import CharClass


@dataclass
class _Facts:
    """Glushkov attributes of one subtree."""

    nullable: bool
    first: list[int]
    last: list[int]


@dataclass
class _Builder:
    labels: list[CharClass] = field(default_factory=list)  # per position
    follow: list[set[int]] = field(default_factory=list)

    def new_position(self, charclass: CharClass) -> int:
        self.labels.append(charclass)
        self.follow.append(set())
        return len(self.labels) - 1

    def analyse(self, node: AstNode) -> _Facts:
        if isinstance(node, Empty):
            return _Facts(nullable=True, first=[], last=[])
        if isinstance(node, Literal):
            position = self.new_position(node.charclass)
            return _Facts(nullable=False, first=[position], last=[position])
        if isinstance(node, Concat):
            return self._concat(node)
        if isinstance(node, Alternation):
            facts = [self.analyse(branch) for branch in node.branches]
            return _Facts(
                nullable=any(f.nullable for f in facts),
                first=[p for f in facts for p in f.first],
                last=[p for f in facts for p in f.last],
            )
        if isinstance(node, Repeat):
            return self._repeat(node)
        raise TypeError(f"unknown AST node: {node!r}")

    def _concat(self, node: Concat) -> _Facts:
        facts = [self.analyse(part) for part in node.parts]
        # follow: last(prefix block) -> first(next part), where the prefix
        # block extends left through nullable parts.
        for index in range(1, len(facts)):
            first_here = facts[index].first
            back = index - 1
            while back >= 0:
                for p in facts[back].last:
                    self.follow[p].update(first_here)
                if not facts[back].nullable:
                    break
                back -= 1

        nullable = all(f.nullable for f in facts)
        first: list[int] = []
        for f in facts:
            first.extend(f.first)
            if not f.nullable:
                break
        last: list[int] = []
        for f in reversed(facts):
            last.extend(f.last)
            if not f.nullable:
                break
        return _Facts(nullable=nullable, first=first, last=last)

    def _repeat(self, node: Repeat) -> _Facts:
        low, high = node.low, node.high
        if (low, high) == (0, 1):
            inner = self.analyse(node.body)
            return _Facts(nullable=True, first=inner.first, last=inner.last)
        if high is None and low in (0, 1):
            inner = self.analyse(node.body)
            for p in inner.last:
                self.follow[p].update(inner.first)
            return _Facts(nullable=inner.nullable or low == 0,
                          first=inner.first, last=inner.last)
        raise ValueError(
            "finite repetition bounds must be expanded before Glushkov "
            "construction (run repro.automata.loops.expand_loops)"
        )


def glushkov_construct(node: AstNode, pattern: str | None = None) -> Fsa:
    """Build the position automaton for ``node`` (see module docstring).

    Finite ``{m,n}`` bounds are expanded automatically; the result has
    one state per symbol position plus the start state, and no ε-arcs.
    """
    node = expand_loops(node)
    builder = _Builder()
    facts = builder.analyse(node)

    fsa = Fsa(pattern=pattern)
    start = fsa.add_state()
    fsa.initial = start
    state_of = [fsa.add_state() for _ in builder.labels]

    for position in facts.first:
        fsa.add_transition(start, state_of[position], builder.labels[position])
    for source, successors in enumerate(builder.follow):
        for position in successors:
            fsa.add_transition(state_of[source], state_of[position], builder.labels[position])

    fsa.finals = {state_of[p] for p in facts.last}
    if facts.nullable:
        fsa.finals.add(start)
    return fsa.trimmed()


def is_homogeneous(fsa: Fsa) -> bool:
    """True when every state's incoming arcs share one label — the
    Glushkov invariant (and ANML's element shape)."""
    incoming: dict[int, int] = {}
    for t in fsa.labelled_transitions():
        mask = t.label.mask  # type: ignore[union-attr]
        if incoming.setdefault(t.dst, mask) != mask:
            return False
    return True
