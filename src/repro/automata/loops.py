"""Loop expansion (paper §IV-C, pass 2 — Fig. 5a).

Quantified sub-REs with *finite* bounds are rewritten into explicit
concatenations of copies so that a compressed loop such as ``(fg){2}``
becomes the linear path ``fgfg`` and can share transitions with other REs
during merging.  Unbounded tails keep a single star loop (``x{2,}`` →
``xx(x)*``): unbounded repetitions cannot be expanded and the paper keeps
them as loops too.

The pass is an AST→AST rewrite, applied before Thompson construction.  An
expansion budget guards against pathological bounds (``x{1000000}``)
blowing up the automaton; patterns exceeding it are left compressed and
reported via :class:`LoopExpansionReport`.

When a :class:`~repro.guard.budget.BudgetMeter` with ``max_loop_copies``
is supplied the cap flows from the budget instead of the module default
and enforcement is strict: the offending pattern is *not* silently kept
compressed — a :class:`~repro.guard.errors.LoopBudgetExceeded` naming
the rule and the exact repeat sub-expression is raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.frontend.ast import (
    AstNode,
    Empty,
    Repeat,
    alternation,
    concat,
    map_ast,
)

#: Default maximum number of body copies a single Repeat may expand into.
DEFAULT_EXPANSION_BUDGET = 256


@dataclass
class LoopExpansionReport:
    """What the pass did: how many loops expanded / kept compressed."""

    expanded: int = 0
    kept_unbounded: int = 0
    over_budget: list[str] = field(default_factory=list)


def expand_loops(
    node: AstNode,
    budget: int = DEFAULT_EXPANSION_BUDGET,
    report: LoopExpansionReport | None = None,
    *,
    meter=None,
    rule: Optional[int] = None,
) -> AstNode:
    """Rewrite finite repetitions into concatenations (see module doc).

    ``meter`` is an optional :class:`~repro.guard.budget.BudgetMeter`;
    when it carries ``max_loop_copies`` that cap replaces ``budget`` and
    over-budget repeats raise instead of staying compressed, with the
    error naming ``rule`` and the offending repeat.
    """
    stats = report if report is not None else LoopExpansionReport()
    strict = meter is not None and meter.budget.max_loop_copies is not None
    if strict:
        budget = meter.budget.max_loop_copies

    def charge(n: Repeat, copies: int) -> bool:
        """Account for ``copies`` body copies; True means within budget."""
        if strict:
            # Raises LoopBudgetExceeded naming the rule and repeat.
            meter.charge_loop_copies(copies, rule=rule, repeat=n.pattern())
            return True
        if copies > budget:
            stats.over_budget.append(n.pattern())
            return False
        return True

    def rewrite(n: AstNode) -> AstNode:
        if not isinstance(n, Repeat):
            return n
        low, high = n.low, n.high
        if (low, high) in ((0, None), (1, None)):
            stats.kept_unbounded += 1
            return n
        if high is None:
            # x{m,} -> x^m x*
            if not charge(n, low):
                return n
            stats.expanded += 1
            stats.kept_unbounded += 1
            return concat([n.body] * low + [Repeat(n.body, 0, None)])
        if not charge(n, high):
            return n
        stats.expanded += 1
        return _expand_bounded(n.body, low, high)

    return map_ast(node, rewrite)


def _expand_bounded(body: AstNode, low: int, high: int) -> AstNode:
    """``x{low,high}`` with finite bounds → required copies + optional tail.

    The optional tail is built as nested optionals
    ``x^low (x (x ... )?)?`` to keep the automaton linear in ``high``.
    """
    if high == 0:
        return Empty()
    required: list[AstNode] = [body] * low
    optional: AstNode | None = None
    for _ in range(high - low):
        layer = body if optional is None else concat([body, optional])
        optional = _optionalize(layer)
    parts = required + ([optional] if optional is not None else [])
    return concat(parts)


def _optionalize(node: AstNode) -> AstNode:
    """``x?`` rendered without a Repeat node, as ``(x|ε)``.

    Using an alternation keeps the expanded AST free of quantifiers, so a
    fully expanded bounded repeat contains no loops at all.
    """
    return alternation([node, Empty()])
