"""The FSA model: a non-deterministic finite automaton over byte labels.

A :class:`Fsa` is the tuple ``a = (Q, Σ, δ, q0, F)`` of the paper's §II,
with states as dense integers ``0..num_states-1``, a single initial state
and labelled transitions whose label is either a
:class:`repro.labels.CharClass` or :data:`EPSILON` (only before the
ε-removal pass runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.labels import CharClass

#: Label of an ε-arc (present only in freshly Thompson-constructed FSAs).
EPSILON: Optional[CharClass] = None


@dataclass(frozen=True)
class Transition:
    """One arc ``src --label--> dst``; ``label is None`` means ε."""

    src: int
    dst: int
    label: Optional[CharClass]

    def is_epsilon(self) -> bool:
        return self.label is None

    def __repr__(self) -> str:
        text = "ε" if self.label is None else self.label.pattern()
        return f"{self.src}-[{text}]->{self.dst}"


@dataclass
class Fsa:
    """A mutable NFA under construction / optimisation.

    Attributes mirror the formal tuple: ``num_states`` defines
    ``Q = {0..num_states-1}``, ``initial`` is ``q0``, ``finals`` is ``F``
    and ``transitions`` encodes ``δ``.  ``pattern`` records the source RE
    for diagnostics and round-trip tests.
    """

    num_states: int = 0
    initial: int = 0
    finals: set[int] = field(default_factory=set)
    transitions: list[Transition] = field(default_factory=list)
    pattern: Optional[str] = None

    # -- construction ----------------------------------------------------

    def add_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def add_transition(self, src: int, dst: int, label: Optional[CharClass]) -> None:
        self._check_state(src)
        self._check_state(dst)
        if label is not None and label.is_empty():
            raise ValueError("transition label must be a non-empty character class")
        self.transitions.append(Transition(src, dst, label))

    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.num_states:
            raise ValueError(f"state {state} out of range (num_states={self.num_states})")

    # -- queries ---------------------------------------------------------

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def has_epsilon(self) -> bool:
        return any(t.is_epsilon() for t in self.transitions)

    def labelled_transitions(self) -> Iterator[Transition]:
        return (t for t in self.transitions if not t.is_epsilon())

    def epsilon_transitions(self) -> Iterator[Transition]:
        return (t for t in self.transitions if t.is_epsilon())

    def outgoing(self, state: int) -> list[Transition]:
        return [t for t in self.transitions if t.src == state]

    def accepts_empty(self) -> bool:
        """True when the empty string is in the language (ε-free FSAs only
        need the direct check; ε-NFAs need the closure)."""
        from repro.automata.epsilon import epsilon_closure

        closure = epsilon_closure(self, {self.initial})
        return bool(closure & self.finals)

    def alphabet_mask(self) -> int:
        """Union bitmask of every labelled transition: the used alphabet Σ."""
        mask = 0
        for t in self.labelled_transitions():
            mask |= t.label.mask  # type: ignore[union-attr]
        return mask

    def total_cc_length(self) -> int:
        """Σ|CC| over transitions labelled by a non-singleton class —
        the ``Tot. N_CC`` column of the paper's Table I."""
        return sum(
            len(t.label)  # type: ignore[arg-type]
            for t in self.labelled_transitions()
            if not t.label.is_single()  # type: ignore[union-attr]
        )

    # -- structural transforms --------------------------------------------

    def renumbered(self, mapping: dict[int, int], num_states: Optional[int] = None) -> "Fsa":
        """Return a copy with states renamed through ``mapping``.

        ``mapping`` must cover every state that appears in the initial
        state, finals, or any transition endpoint.
        """
        new_num = num_states if num_states is not None else (max(mapping.values()) + 1 if mapping else 0)
        out = Fsa(num_states=new_num, initial=mapping[self.initial], pattern=self.pattern)
        out.finals = {mapping[f] for f in self.finals}
        out.transitions = [Transition(mapping[t.src], mapping[t.dst], t.label) for t in self.transitions]
        return out

    def trimmed(self) -> "Fsa":
        """Drop states unreachable from the initial state (and renumber).

        States that cannot reach a final state are kept: the merging
        algorithm operates on morphology, and Thompson output never has
        dead states anyway.
        """
        reachable = self.reachable_states()
        order = sorted(reachable)
        mapping = {old: new for new, old in enumerate(order)}
        out = Fsa(num_states=len(order), initial=mapping[self.initial], pattern=self.pattern)
        out.finals = {mapping[f] for f in self.finals if f in reachable}
        out.transitions = [
            Transition(mapping[t.src], mapping[t.dst], t.label)
            for t in self.transitions
            if t.src in reachable and t.dst in reachable
        ]
        return out

    def reachable_states(self) -> set[int]:
        adjacency: dict[int, list[int]] = {}
        for t in self.transitions:
            adjacency.setdefault(t.src, []).append(t.dst)
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            for nxt in adjacency.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def copy(self) -> "Fsa":
        out = Fsa(
            num_states=self.num_states,
            initial=self.initial,
            finals=set(self.finals),
            transitions=list(self.transitions),
            pattern=self.pattern,
        )
        return out

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Structural sanity checks; raises ``ValueError`` on violation."""
        self._check_state(self.initial)
        for f in self.finals:
            self._check_state(f)
        for t in self.transitions:
            self._check_state(t.src)
            self._check_state(t.dst)
            if t.label is not None and t.label.is_empty():
                raise ValueError(f"empty label on {t}")

    def __repr__(self) -> str:
        return (
            f"Fsa(states={self.num_states}, transitions={len(self.transitions)}, "
            f"initial={self.initial}, finals={sorted(self.finals)}, pattern={self.pattern!r})"
        )


def isomorphic(a: Fsa, b: Fsa) -> bool:
    """Check FSA isomorphism Ψ: a → b (exact, exponential in the worst case
    but fine on the small automata used in tests).

    Two FSAs are isomorphic when a bijection over states maps initial to
    initial, finals to finals and transitions (with equal labels) to
    transitions — the property the merging algorithm must preserve for
    every per-RE projection.
    """
    if a.num_states != b.num_states or len(a.transitions) != len(b.transitions):
        return False
    if len(a.finals) != len(b.finals):
        return False

    a_out = _signature_index(a)
    b_out = _signature_index(b)

    def extend(mapping: dict[int, int], used: set[int]) -> bool:
        if len(mapping) == a.num_states:
            return _transition_sets_match(a, b, mapping)
        state = next(s for s in range(a.num_states) if s not in mapping)
        for candidate in range(b.num_states):
            if candidate in used:
                continue
            if (state in a.finals) != (candidate in b.finals):
                continue
            if a_out[state] != b_out[candidate]:
                continue
            mapping[state] = candidate
            used.add(candidate)
            if extend(mapping, used):
                return True
            del mapping[state]
            used.discard(candidate)
        return False

    return extend({a.initial: b.initial}, {b.initial})


def _signature_index(fsa: Fsa) -> list[tuple[int, int]]:
    out_deg = [0] * fsa.num_states
    in_deg = [0] * fsa.num_states
    for t in fsa.transitions:
        out_deg[t.src] += 1
        in_deg[t.dst] += 1
    return list(zip(out_deg, in_deg))


def _transition_sets_match(a: Fsa, b: Fsa, mapping: dict[int, int]) -> bool:
    mapped = {(mapping[t.src], mapping[t.dst], None if t.label is None else t.label.mask) for t in a.transitions}
    actual = {(t.src, t.dst, None if t.label is None else t.label.mask) for t in b.transitions}
    return mapped == actual


def concat_state_count(fsas: Iterable[Fsa]) -> tuple[int, int]:
    """Total (states, transitions) over a collection — Table I helper."""
    states = 0
    transitions = 0
    for fsa in fsas:
        states += fsa.num_states
        transitions += fsa.num_transitions
    return states, transitions
