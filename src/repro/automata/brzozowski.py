"""Brzozowski derivatives: a third, independent matching semantics.

The paper's future-work citation [50] is a derivative-based matcher;
this module implements the classic construction as an *oracle*: the
derivative of a regex AST with respect to a character is computed
symbolically, so acceptance needs no automaton at all — a completely
independent code path from both the Thompson and Glushkov pipelines,
which the cross-validation property tests exploit.

Definitions (Brzozowski 1964):

* ``nullable(r)`` — does ``r`` accept ε;
* ``derivative(r, c)`` — a regex for ``{ w | cw ∈ L(r) }``;
* ``accepts(r, s)`` — ``nullable(derivative(...derivative(r, s₀)..., sₙ))``.

Smart constructors keep derivatives in a weak normal form (the
similarity rules: ∅ absorption, ε units, idempotent-ish alternation) so
repeated derivation stays small; :func:`derivative_dfa` additionally
builds the derivative automaton with memoised states, guarded by a
budget (derivatives over a 256-symbol alphabet use the label-partition
trick to process each distinct class once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend.ast import (
    Alternation,
    AstNode,
    Concat,
    Empty,
    Literal,
    Repeat,
)
from repro.guard.errors import BudgetExceeded
from repro.labels import CharClass
from repro.mfsa.ccpartial import alphabet_partition


@dataclass(frozen=True, eq=False)
class Never(AstNode):
    """The empty language ∅ (needed by derivatives; not parseable)."""

    def pattern(self) -> str:
        return "(?!)"  # diagnostic only

    def _key(self):
        return ()


def nullable(node: AstNode) -> bool:
    """Does the language contain ε?"""
    if isinstance(node, Empty):
        return True
    if isinstance(node, (Literal, Never)):
        return False
    if isinstance(node, Concat):
        return all(nullable(p) for p in node.parts)
    if isinstance(node, Alternation):
        return any(nullable(b) for b in node.branches)
    if isinstance(node, Repeat):
        return node.low == 0 or nullable(node.body)
    raise TypeError(f"unknown AST node: {node!r}")


# -- smart constructors (similarity normal form) ----------------------------


def _alt(branches: list[AstNode]) -> AstNode:
    flat: list[AstNode] = []
    seen: set[AstNode] = set()
    for branch in branches:
        if isinstance(branch, Never):
            continue
        parts = branch.branches if isinstance(branch, Alternation) else (branch,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                flat.append(part)
    if not flat:
        return Never()
    if len(flat) == 1:
        return flat[0]
    return Alternation(tuple(flat))


def _cat(head: AstNode, tail: AstNode) -> AstNode:
    if isinstance(head, Never) or isinstance(tail, Never):
        return Never()
    if isinstance(head, Empty):
        return tail
    if isinstance(tail, Empty):
        return head
    head_parts = head.parts if isinstance(head, Concat) else (head,)
    tail_parts = tail.parts if isinstance(tail, Concat) else (tail,)
    return Concat(head_parts + tail_parts)


def _rep(body: AstNode, low: int, high: Optional[int]) -> AstNode:
    if isinstance(body, Never):
        return Empty() if low == 0 else Never()
    if isinstance(body, Empty):
        return Empty()
    if high == 0:
        return Empty()
    return Repeat(body, low, high)


# -- derivatives -----------------------------------------------------------


def derivative(node: AstNode, char: int) -> AstNode:
    """∂_c(r): the language of suffixes after consuming ``char``."""
    if isinstance(node, (Empty, Never)):
        return Never()
    if isinstance(node, Literal):
        return Empty() if char in node.charclass else Never()
    if isinstance(node, Alternation):
        return _alt([derivative(b, char) for b in node.branches])
    if isinstance(node, Concat):
        head, tail_parts = node.parts[0], node.parts[1:]
        tail: AstNode = tail_parts[0] if len(tail_parts) == 1 else Concat(tail_parts)
        first = _cat(derivative(head, char), tail)
        if nullable(head):
            return _alt([first, derivative(tail, char)])
        return first
    if isinstance(node, Repeat):
        low, high = node.low, node.high
        if high == 0:  # r{0,0} = {ε}: no derivative survives
            return Never()
        remaining = _rep(node.body, max(0, low - 1), None if high is None else high - 1)
        return _cat(derivative(node.body, char), remaining)
    raise TypeError(f"unknown AST node: {node!r}")


def accepts(node: AstNode, data: bytes | str) -> bool:
    """Whole-string acceptance via iterated derivatives."""
    payload = data.encode("latin-1") if isinstance(data, str) else data
    current = node
    for byte in payload:
        current = derivative(current, byte)
        if isinstance(current, Never):
            return False
    return nullable(current)


# -- derivative automaton -----------------------------------------------------


class DerivativeBudgetError(BudgetExceeded, RuntimeError):
    """Raised when the derivative DFA exceeds its state budget (the weak
    normal form does not guarantee finiteness for every regex).

    A :class:`~repro.guard.errors.BudgetExceeded` in the taxonomy; keeps
    its historical :class:`RuntimeError` base."""

    default_stage = "determinize"


def _labels_of(node: AstNode) -> list[int]:
    return [n.charclass.mask for n in node.walk() if isinstance(n, Literal)]


def derivative_dfa(node: AstNode, max_states: int = 2000):
    """Build the derivative automaton as a :class:`repro.dfa.dfa.Dfa`.

    States are derivative ASTs (structural equality dedupes them); each
    alphabet-partition block is derived once per state.  Accepting
    states are the nullable derivatives (accept set = {0}); the output
    is anchored (whole-string) — wrap with ``.*`` material for streaming.
    """
    from repro.dfa.dfa import Dfa

    blocks = alphabet_partition(sorted(set(_labels_of(node))))
    dfa = Dfa()
    state_of: dict[AstNode, int] = {}

    def intern(ast: AstNode) -> int:
        if ast in state_of:
            return state_of[ast]
        if len(state_of) >= max_states:
            raise DerivativeBudgetError(f"more than {max_states} derivative states")
        accept = frozenset({0}) if nullable(ast) else frozenset()
        state_of[ast] = dfa.add_state(accept)
        return state_of[ast]

    worklist = [node]
    intern(node)
    dfa.initial = 0
    while worklist:
        current = worklist.pop()
        src = state_of[current]
        for block in blocks:
            representative = (block & -block).bit_length() - 1
            result = derivative(current, representative)
            if isinstance(result, Never):
                continue
            known = result in state_of
            dst = intern(result)
            if not known:
                worklist.append(result)
            row = dfa.rows[src]
            remaining = block
            while remaining:
                low_bit = remaining & -remaining
                row[low_bit.bit_length() - 1] = dst
                remaining ^= low_bit
    dfa.validate()
    return dfa
