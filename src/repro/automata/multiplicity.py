"""Multiplicity simplification (paper §IV-C, pass 3 — Fig. 5b).

The *multiplicity* of a state pair ``(q1, q2)`` is the number of parallel
arcs between them.  Merging individual parallel single-character arcs
across automata can create incorrect MFSAs (Fig. 5b: sharing only the
``k`` arc of ``(k|h)`` with another RE's ``k`` lets the MFSA accept
``hfd``).  The pass therefore fuses all parallel arcs between a state pair
into a single character-class arc, whose label is the union of the
individual labels.  Labels then merge only when *identical as sets*,
which is exactly the paper's CC-comparison rule.

The rewrite is trivially language-preserving:
``q1 -a-> q2`` and ``q1 -b-> q2``  ≡  ``q1 -[ab]-> q2``.
"""

from __future__ import annotations

from repro.automata.fsa import Fsa, Transition
from repro.labels import CharClass


def simplify_multiplicity(fsa: Fsa) -> Fsa:
    """Fuse parallel arcs between each state pair into one CC arc.

    ε-arcs must already be removed.  Transition order follows the first
    occurrence of each state pair in the input, keeping the pass stable.
    """
    if fsa.has_epsilon():
        raise ValueError("simplify_multiplicity requires an ε-free FSA")

    fused: dict[tuple[int, int], int] = {}
    order: list[tuple[int, int]] = []
    for t in fsa.transitions:
        key = (t.src, t.dst)
        if key not in fused:
            fused[key] = 0
            order.append(key)
        fused[key] |= t.label.mask  # type: ignore[union-attr]

    out = Fsa(num_states=fsa.num_states, initial=fsa.initial, finals=set(fsa.finals), pattern=fsa.pattern)
    out.transitions = [Transition(src, dst, CharClass(fused[(src, dst)])) for src, dst in order]
    return out


def multiplicity(fsa: Fsa) -> dict[tuple[int, int], int]:
    """Arc count per state pair — diagnostic used by tests and benches."""
    counts: dict[tuple[int, int], int] = {}
    for t in fsa.transitions:
        key = (t.src, t.dst)
        counts[key] = counts.get(key, 0) + 1
    return counts
