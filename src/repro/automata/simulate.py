"""Reference NFA simulation — the semantic oracle for the engines.

Two match notions are provided:

* :func:`accepts` — whole-string (language membership) acceptance, used to
  test construction passes against Python's ``re`` and hand-built cases.
* :func:`find_match_ends` / :func:`simulate_stream` — streaming substring
  matching: a match is reported at offset ``e`` when some substring ending
  at ``e`` (starting anywhere) is in the language.  This is the semantics
  of iNFAnt/iMFAnt and of DPI engines generally, and the baseline the
  engines in :mod:`repro.engine` must agree with exactly.

The implementation is deliberately simple set-of-states simulation —
clarity over speed.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.epsilon import epsilon_closure
from repro.automata.fsa import Fsa


def _indexed_delta(fsa: Fsa) -> dict[int, list[tuple[int, int]]]:
    """state -> [(label_mask, dst)] for labelled arcs."""
    delta: dict[int, list[tuple[int, int]]] = {}
    for t in fsa.labelled_transitions():
        delta.setdefault(t.src, []).append((t.label.mask, t.dst))  # type: ignore[union-attr]
    return delta


def _as_bytes(data: bytes | str) -> bytes:
    return data.encode("latin-1") if isinstance(data, str) else data


def accepts(fsa: Fsa, data: bytes | str) -> bool:
    """Whole-string acceptance (handles ε-arcs if present)."""
    payload = _as_bytes(data)
    current = epsilon_closure(fsa, {fsa.initial})
    delta = _indexed_delta(fsa)
    for byte in payload:
        moved: set[int] = set()
        bit = 1 << byte
        for state in current:
            for mask, dst in delta.get(state, ()):
                if mask & bit:
                    moved.add(dst)
        if not moved:
            return False
        current = epsilon_closure(fsa, moved)
    return bool(current & fsa.finals)


def find_match_ends(fsa: Fsa, data: bytes | str) -> set[int]:
    """Offsets ``e`` (1-based, i.e. number of consumed bytes) at which some
    substring ending there matches; streaming semantics.

    If the FSA accepts the empty string every offset 0..len matches and a
    full range is returned.
    """
    payload = _as_bytes(data)
    if fsa.accepts_empty():
        return set(range(len(payload) + 1))

    delta = _indexed_delta(fsa)
    initial_closure = frozenset(epsilon_closure(fsa, {fsa.initial}))
    has_eps = fsa.has_epsilon()

    matches: set[int] = set()
    current: set[int] = set()
    for position, byte in enumerate(payload, start=1):
        bit = 1 << byte
        moved: set[int] = set()
        for state in current | initial_closure:
            for mask, dst in delta.get(state, ()):
                if mask & bit:
                    moved.add(dst)
        current = epsilon_closure(fsa, moved) if has_eps else moved
        if current & fsa.finals:
            matches.add(position)
    return matches


def simulate_stream(fsas: Iterable[tuple[int, Fsa]], data: bytes | str) -> set[tuple[int, int]]:
    """Run several (rule_id, FSA) pairs over the stream; returns the set of
    ``(rule_id, end_offset)`` matches — the report format shared with the
    engines and compared in integration tests.
    """
    results: set[tuple[int, int]] = set()
    for rule_id, fsa in fsas:
        for end in find_match_ends(fsa, data):
            results.add((rule_id, end))
    return results
