"""The composed single-FSA optimisation pipeline (paper §IV-B/§IV-C).

``compile_re_to_fsa`` takes one RE string through the full single-automaton
path — parse, loop-expand, Thompson-construct, ε-remove, multiplicity-
simplify — producing the ε-free, CC-normalised NFA the merger consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.ast import AstNode
from repro.frontend.parser import parse
from repro.automata.epsilon import remove_epsilon
from repro.automata.fsa import Fsa
from repro.automata.loops import DEFAULT_EXPANSION_BUDGET, LoopExpansionReport, expand_loops
from repro.automata.multiplicity import simplify_multiplicity
from repro.automata.statemerge import merge_suffix_states
from repro.automata.thompson import thompson_construct


@dataclass
class OptimizeOptions:
    """Knobs for the single-FSA passes (all on by default, as in the paper)."""

    #: "thompson" (the paper's construction, + ε-removal) or "glushkov"
    #: (position automaton, ε-free and homogeneous by construction)
    construction: str = "thompson"
    #: fold ASCII case at compile time (the DPI `nocase` behaviour)
    case_insensitive: bool = False
    expand_loops: bool = True
    loop_budget: int = DEFAULT_EXPANSION_BUDGET
    merge_suffix_states: bool = True
    simplify_multiplicity: bool = True


def optimize_ast(
    node: AstNode,
    options: OptimizeOptions | None = None,
    *,
    meter=None,
    rule=None,
) -> AstNode:
    """AST-level passes: case folding, then loop expansion.

    ``meter``/``rule`` (an optional :class:`~repro.guard.budget.BudgetMeter`
    and the rule id being compiled) flow into loop expansion so strict
    loop budgets name their offender."""
    options = options or OptimizeOptions()
    if options.case_insensitive:
        from repro.frontend.casefold import fold_case

        node = fold_case(node)
    if options.expand_loops:
        return expand_loops(
            node,
            budget=options.loop_budget,
            report=LoopExpansionReport(),
            meter=meter,
            rule=rule,
        )
    return node


def optimize_fsa(
    fsa: Fsa,
    options: OptimizeOptions | None = None,
    *,
    meter=None,
    rule=None,
) -> Fsa:
    """FSA-level passes: ε-removal, suffix state merging, multiplicity
    simplification (in that order; each is individually optional)."""
    options = options or OptimizeOptions()
    out = remove_epsilon(fsa, meter=meter, rule=rule)
    if options.merge_suffix_states:
        out = merge_suffix_states(out)
    if options.simplify_multiplicity:
        out = simplify_multiplicity(out)
        if options.merge_suffix_states:
            # Fused labels can expose further suffix equivalences.
            out = merge_suffix_states(out)
    if meter is not None:
        meter.check_deadline(stage="single_opt", rule=rule)
    return out


def construct_nfa(ast: AstNode, pattern: str | None, options: OptimizeOptions) -> Fsa:
    """Dispatch to the configured construction algorithm."""
    if options.construction == "thompson":
        return thompson_construct(ast, pattern=pattern)
    if options.construction == "glushkov":
        from repro.automata.glushkov import glushkov_construct

        return glushkov_construct(ast, pattern=pattern)
    from repro.guard.errors import UsageError

    raise UsageError(f"unknown construction {options.construction!r}")


def compile_re_to_fsa(pattern: str, options: OptimizeOptions | None = None) -> Fsa:
    """Full single-RE path: pattern string → optimised ε-free NFA."""
    options = options or OptimizeOptions()
    ast = optimize_ast(parse(pattern), options)
    nfa = construct_nfa(ast, pattern, options)
    return optimize_fsa(nfa, options)
