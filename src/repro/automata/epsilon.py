"""ε-arc removal (paper §IV-C, pass 1).

ANML has no ε-moves and the merging algorithm compares labelled
transitions only, so the pipeline eliminates every ε-arc right after
Thompson construction.  The classic closure construction is used:

* ``closure(q)`` = all states reachable from ``q`` via ε-arcs only;
* for every state ``q``, every ``p ∈ closure(q)`` and every labelled arc
  ``p --c--> r``, the output has ``q --c--> r``;
* ``q`` is final iff ``closure(q)`` intersects the original finals.

The language is preserved exactly; the output is trimmed of unreachable
states and renumbered densely.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.fsa import Fsa, Transition


def epsilon_closure(fsa: Fsa, seeds: Iterable[int]) -> set[int]:
    """ε-closure of a set of states."""
    eps_adj: dict[int, list[int]] = {}
    for t in fsa.transitions:
        if t.is_epsilon():
            eps_adj.setdefault(t.src, []).append(t.dst)
    closure = set(seeds)
    stack = list(closure)
    while stack:
        state = stack.pop()
        for nxt in eps_adj.get(state, ()):
            if nxt not in closure:
                closure.add(nxt)
                stack.append(nxt)
    return closure


def remove_epsilon(fsa: Fsa, *, meter=None, rule=None) -> Fsa:
    """Return an equivalent ε-free FSA (trimmed and densely renumbered).

    ``meter`` is an optional :class:`~repro.guard.budget.BudgetMeter`:
    the closure product can square the arc count, so each emitted arc is
    charged and the deadline is checked every ``check_stride`` arcs.
    """
    if not fsa.has_epsilon():
        return fsa.trimmed()

    eps_adj: dict[int, list[int]] = {}
    labelled_out: dict[int, list[Transition]] = {}
    for t in fsa.transitions:
        if t.is_epsilon():
            eps_adj.setdefault(t.src, []).append(t.dst)
        else:
            labelled_out.setdefault(t.src, []).append(t)

    closures = _all_closures(fsa.num_states, eps_adj)

    stride = meter.budget.check_stride if meter is not None else 0
    emitted = 0
    out = Fsa(num_states=fsa.num_states, initial=fsa.initial, pattern=fsa.pattern)
    seen_arcs: set[tuple[int, int, int]] = set()
    for q in range(fsa.num_states):
        for p in closures[q]:
            for t in labelled_out.get(p, ()):
                key = (q, t.dst, t.label.mask)  # type: ignore[union-attr]
                if key not in seen_arcs:
                    seen_arcs.add(key)
                    out.add_transition(q, t.dst, t.label)
                    if meter is not None:
                        emitted += 1
                        meter.charge_transitions(1, stage="single_opt", rule=rule)
                        if emitted % stride == 0:
                            meter.check_deadline(stage="single_opt", rule=rule)
        if closures[q] & fsa.finals:
            out.finals.add(q)

    return out.trimmed()


def _all_closures(num_states: int, eps_adj: dict[int, list[int]]) -> list[set[int]]:
    """Closure of every state, memoised over the ε-graph's SCC-free DAG.

    Thompson output can contain ε-cycles (from ``(x*)*`` style nesting), so
    a plain DFS with memoisation on the cycle-free part plus an iterative
    fallback is used.
    """
    closures: list[set[int]] = [set() for _ in range(num_states)]
    for start in range(num_states):
        if closures[start]:
            continue
        # Iterative DFS from `start`; fill closure for all states on the way.
        closure = {start}
        stack = [start]
        while stack:
            state = stack.pop()
            for nxt in eps_adj.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        closures[start] = closure
    return closures
