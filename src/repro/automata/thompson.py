"""Thompson-like construction: regex AST → ε-NFA (paper §IV-B).

The construction walks the AST depth-first, encoding each leaf as a
two-state sub-FSA and combining sub-FSAs at the operator nodes, exactly
as the paper describes.  Every sub-FSA has one entry and one exit state;
ε-arcs glue them together and are removed afterwards by
:func:`repro.automata.epsilon.remove_epsilon`.

Finite repetition bounds are supported directly (by structural
expansion), so the builder accepts any AST; the pipeline nevertheless
runs :func:`repro.automata.loops.expand_loops` first so that the loop
expansion is an explicit, observable compilation pass as in the paper.
"""

from __future__ import annotations

from repro.frontend.ast import (
    Alternation,
    AstNode,
    Concat,
    Empty,
    Literal,
    Repeat,
)
from repro.automata.fsa import EPSILON, Fsa


class _Builder:
    """Accumulates states/arcs; fragment = (entry, exit) state pair."""

    def __init__(self) -> None:
        self.fsa = Fsa()

    def state(self) -> int:
        return self.fsa.add_state()

    def arc(self, src: int, dst: int, label) -> None:
        self.fsa.add_transition(src, dst, label)

    # -- fragments ---------------------------------------------------------

    def build(self, node: AstNode) -> tuple[int, int]:
        if isinstance(node, Empty):
            return self._empty()
        if isinstance(node, Literal):
            return self._literal(node)
        if isinstance(node, Concat):
            return self._concat(node)
        if isinstance(node, Alternation):
            return self._alternation(node)
        if isinstance(node, Repeat):
            return self._repeat(node)
        raise TypeError(f"unknown AST node: {node!r}")

    def _empty(self) -> tuple[int, int]:
        entry = self.state()
        exit_ = self.state()
        self.arc(entry, exit_, EPSILON)
        return entry, exit_

    def _literal(self, node: Literal) -> tuple[int, int]:
        entry = self.state()
        exit_ = self.state()
        self.arc(entry, exit_, node.charclass)
        return entry, exit_

    def _concat(self, node: Concat) -> tuple[int, int]:
        entry, exit_ = self.build(node.parts[0])
        for part in node.parts[1:]:
            nxt_entry, nxt_exit = self.build(part)
            self.arc(exit_, nxt_entry, EPSILON)
            exit_ = nxt_exit
        return entry, exit_

    def _alternation(self, node: Alternation) -> tuple[int, int]:
        entry = self.state()
        exit_ = self.state()
        for branch in node.branches:
            b_entry, b_exit = self.build(branch)
            self.arc(entry, b_entry, EPSILON)
            self.arc(b_exit, exit_, EPSILON)
        return entry, exit_

    def _repeat(self, node: Repeat) -> tuple[int, int]:
        low, high = node.low, node.high
        if (low, high) == (0, None):
            return self._star(node.body)
        if (low, high) == (1, None):
            return self._plus(node.body)
        if (low, high) == (0, 1):
            return self._optional(node.body)
        # General bounds: expand structurally (equivalent to the AST-level
        # loop-expansion pass, kept here so the builder is total).
        if high is None:
            # x{m,} == x^m x*
            entry, exit_ = self._required_copies(node.body, low)
            star_entry, star_exit = self._star(node.body)
            self.arc(exit_, star_entry, EPSILON)
            return entry, star_exit
        # x{m,n} == x^m (x (x (...)?)?)? with n-m optional layers
        if low == 0 and high == 0:
            return self._empty()
        entry, exit_ = (self._required_copies(node.body, low) if low else self._empty())
        for _ in range(high - low):
            opt_entry, opt_exit = self._optional(node.body)
            self.arc(exit_, opt_entry, EPSILON)
            exit_ = opt_exit
        return entry, exit_

    def _required_copies(self, body: AstNode, count: int) -> tuple[int, int]:
        entry, exit_ = self.build(body)
        for _ in range(count - 1):
            nxt_entry, nxt_exit = self.build(body)
            self.arc(exit_, nxt_entry, EPSILON)
            exit_ = nxt_exit
        return entry, exit_

    def _star(self, body: AstNode) -> tuple[int, int]:
        entry = self.state()
        exit_ = self.state()
        b_entry, b_exit = self.build(body)
        self.arc(entry, b_entry, EPSILON)
        self.arc(b_exit, exit_, EPSILON)
        self.arc(entry, exit_, EPSILON)
        self.arc(b_exit, b_entry, EPSILON)
        return entry, exit_

    def _plus(self, body: AstNode) -> tuple[int, int]:
        entry = self.state()
        exit_ = self.state()
        b_entry, b_exit = self.build(body)
        self.arc(entry, b_entry, EPSILON)
        self.arc(b_exit, exit_, EPSILON)
        self.arc(b_exit, b_entry, EPSILON)
        return entry, exit_

    def _optional(self, body: AstNode) -> tuple[int, int]:
        entry, exit_ = self.build(body)
        self.arc(entry, exit_, EPSILON)
        return entry, exit_


def thompson_construct(node: AstNode, pattern: str | None = None) -> Fsa:
    """Build an ε-NFA recognising the language of ``node``.

    The result has exactly one initial and one final state and uses ε-arcs
    freely; run :func:`repro.automata.epsilon.remove_epsilon` to obtain the
    ε-free automaton the merger and engines require.
    """
    builder = _Builder()
    entry, exit_ = builder.build(node)
    fsa = builder.fsa
    fsa.initial = entry
    fsa.finals = {exit_}
    fsa.pattern = pattern
    return fsa
