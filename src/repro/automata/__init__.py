"""Single-FSA substrate: model, construction and optimisation passes.

This package is the paper's mid-end up to (but excluding) merging:

* :mod:`repro.automata.fsa` — the NFA model with labelled transitions.
* :mod:`repro.automata.thompson` — AST → ε-NFA construction (§IV-B).
* :mod:`repro.automata.epsilon` — ε-arc removal (§IV-C pass 1).
* :mod:`repro.automata.loops` — bounded-loop expansion (§IV-C pass 2).
* :mod:`repro.automata.multiplicity` — multiplicity>1 → CC arcs (§IV-C pass 3).
* :mod:`repro.automata.optimize` — the composed single-FSA pipeline.
* :mod:`repro.automata.simulate` — reference set-of-states matcher.
* :mod:`repro.automata.coo` — COO adjacency view (paper Fig. 2).
"""

from repro.automata.epsilon import remove_epsilon
from repro.automata.fsa import EPSILON, Fsa, Transition
from repro.automata.loops import expand_loops
from repro.automata.multiplicity import simplify_multiplicity
from repro.automata.optimize import compile_re_to_fsa, optimize_fsa
from repro.automata.simulate import (
    accepts,
    find_match_ends,
    simulate_stream,
)
from repro.automata.thompson import thompson_construct

__all__ = [
    "EPSILON",
    "Fsa",
    "Transition",
    "remove_epsilon",
    "expand_loops",
    "simplify_multiplicity",
    "compile_re_to_fsa",
    "optimize_fsa",
    "accepts",
    "find_match_ends",
    "simulate_stream",
    "thompson_construct",
]
