"""Suffix state merging: collapse language-equivalent tail states.

Thompson construction followed by ε-removal leaves many states with
*identical futures* — e.g. in ``(k|h)bc`` the two branch states reached
by ``k`` and ``h`` both lead into the same ``bc`` tail.  Collapsing them
yields the compact automata the paper's examples show (Fig. 5b draws
``(k|h)bc`` with a single post-branch state) and is what makes parallel
single-character arcs (multiplicity > 1) appear between one state pair,
so the multiplicity-simplification pass has something to fuse.

The pass iteratively merges states with equal signature
``(is_final, {(label, destination)})`` — a backward-bisimulation
collapse, safe for NFAs (bisimilar states accept the same suffix
language) and run to a fixpoint.  The initial state participates like
any other state.
"""

from __future__ import annotations

from repro.automata.fsa import Fsa, Transition


def merge_suffix_states(fsa: Fsa, max_rounds: int | None = None) -> Fsa:
    """Collapse states with identical finality and outgoing arc sets.

    Returns a new, densely renumbered FSA; iterates until no two states
    share a signature (or ``max_rounds`` is hit).
    """
    if fsa.has_epsilon():
        raise ValueError("merge_suffix_states requires an ε-free FSA")

    current = fsa
    rounds = 0
    while True:
        mapping = _merge_round(current)
        if mapping is None:
            return current
        current = _apply_merge(current, mapping)
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            return current


def _merge_round(fsa: Fsa) -> dict[int, int] | None:
    """One merge round: state → representative, or None at fixpoint."""
    outgoing: dict[int, set[tuple[int, int]]] = {s: set() for s in range(fsa.num_states)}
    for t in fsa.transitions:
        outgoing[t.src].add((t.label.mask, t.dst))  # type: ignore[union-attr]

    representative: dict[tuple, int] = {}
    mapping: dict[int, int] = {}
    merged_any = False
    for state in range(fsa.num_states):
        signature = (state in fsa.finals, frozenset(outgoing[state]))
        if signature in representative:
            mapping[state] = representative[signature]
            merged_any = True
        else:
            representative[signature] = state
            mapping[state] = state
    return mapping if merged_any else None


def _apply_merge(fsa: Fsa, mapping: dict[int, int]) -> Fsa:
    kept = sorted(set(mapping.values()))
    dense = {old: new for new, old in enumerate(kept)}
    rename = {state: dense[mapping[state]] for state in range(fsa.num_states)}

    out = Fsa(num_states=len(kept), initial=rename[fsa.initial], pattern=fsa.pattern)
    out.finals = {rename[f] for f in fsa.finals}
    seen: set[tuple[int, int, int]] = set()
    for t in fsa.transitions:
        key = (rename[t.src], rename[t.dst], t.label.mask)  # type: ignore[union-attr]
        if key not in seen:
            seen.add(key)
            out.transitions.append(Transition(key[0], key[1], t.label))
    return out
