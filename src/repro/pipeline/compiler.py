"""The compilation driver: REs in, MFSAs (+ extended ANML) out.

Mirrors the paper's Fig. 4 stage structure and timing attribution:

=============== ==========================================================
Stage           Work
=============== ==========================================================
``frontend``    lexical + syntactic analysis (pattern → AST)
``ast_to_fsa``  loop expansion (AST rewrite) + Thompson construction
``single_opt``  ε-removal + multiplicity simplification (per FSA)
``merging``     Algorithm 1 over M-sized sequential groups (K = ⌈N/M⌉)
``backend``     extended-ANML generation
=============== ==========================================================

Deviation note: the paper expands loops inside single-FSA optimisation;
we rewrite at AST level (provably equivalent output) so the expansion is
attributed to ``ast_to_fsa``.  DESIGN.md §5 records this.

Timing is measured with ``time.perf_counter`` (monotonic,
high-resolution) and emitted through :mod:`repro.obs` spans — one
``compile`` root span with a ``compile.<stage>`` child per stage — while
the aggregate lands in the same :class:`StageTimes` result shape the
reporting layer consumes.  With observability disabled the spans are
no-ops and only the ``StageTimes`` arithmetic remains.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Sequence

import repro.obs as obs

from repro.automata.fsa import Fsa
from repro.automata.optimize import OptimizeOptions, construct_nfa, optimize_ast, optimize_fsa
from repro.anml.writer import write_anml
from repro.counting.anml import write_counting_anml
from repro.counting.build import DEFAULT_MIN_COUNT_BOUND, build_counting_fsa_from_ast
from repro.counting.merge import CountingMergeReport, merge_counting_fsas
from repro.counting.mfsa import CountingMfsa
from repro.frontend.parser import parse
from repro.guard import faultinject
from repro.guard.budget import Budget
from repro.guard.errors import CompileError, UsageError
from repro.mfsa.ccpartial import stratify_ruleset
from repro.mfsa.clustering import similarity_groups
from repro.mfsa.merge import DEFAULT_SEED_CAP, MergeReport, merge_groups, merge_ruleset
from repro.mfsa.model import Mfsa
from repro.mfsa.reduce import reduce_mfsa


@dataclass(frozen=True)
class CompileOptions:
    """Framework configuration.

    ``merging_factor`` follows the artifact's convention: 0 (or any value
    ≥ the ruleset size) merges the whole ruleset into one MFSA ("all");
    1 disables merging (the single-FSA baseline); otherwise REs are
    grouped sequentially in M-sized groups.
    """

    merging_factor: int = 0
    optimize: OptimizeOptions = field(default_factory=OptimizeOptions)
    #: how M-sized groups are formed: "sequential" (the paper's §VI
    #: sampling) or "clustered" (INDEL-similarity grouping — the paper's
    #: future-work extension, see repro.mfsa.clustering)
    grouping: str = "sequential"
    #: opt-in partial-CC merging via alphabet stratification (§VI-A ext.)
    stratify_charclasses: bool = False
    #: cap on same-label seed candidates in the merger (None = exhaustive)
    seed_cap: Optional[int] = DEFAULT_SEED_CAP
    #: discard shared sub-paths shorter than this many transitions before
    #: relabeling (1 = maximal merging; 2 reproduces the paper's
    #: compression levels at paper scale — see EXPERIMENTS.md)
    min_walk_len: int = 1
    #: run the post-merge belonging-aware suffix reduction
    #: (repro.mfsa.reduce) on every MFSA
    reduce_mfsa: bool = False
    #: generate the extended-ANML output (the back-end stage)
    emit_anml: bool = True
    #: resource budget for the whole compile (None = ungoverned); one
    #: :class:`~repro.guard.budget.BudgetMeter` spans every stage, so a
    #: deadline covers the compile end to end
    budget: Optional[Budget] = None
    #: compile for ``backend="counting"``: bounded repeats survive loop
    #: expansion and become counting arcs (counter registers at run
    #: time) instead of state chains; the result's ``mfsas`` are
    #: :class:`~repro.counting.mfsa.CountingMfsa` (plain :class:`Mfsa`
    #: when every repeat fell below the threshold and expanded)
    counting: bool = False
    #: the expand-vs-count policy knob: repeats whose high bound (or an
    #: unbounded repeat's low bound) reaches this many copies become
    #: counter registers, smaller ones expand as usual
    count_threshold: int = DEFAULT_MIN_COUNT_BOUND


@dataclass
class StageTimes:
    """Per-stage wall-clock seconds (the Fig. 8 series)."""

    frontend: float = 0.0
    ast_to_fsa: float = 0.0
    single_opt: float = 0.0
    merging: float = 0.0
    backend: float = 0.0

    @property
    def total(self) -> float:
        return self.frontend + self.ast_to_fsa + self.single_opt + self.merging + self.backend

    def as_dict(self) -> dict[str, float]:
        return {
            "FE": self.frontend,
            "AST to FSA": self.ast_to_fsa,
            "ME-single": self.single_opt,
            "ME-merging": self.merging,
            "BE": self.backend,
        }


@dataclass
class CompilationResult:
    """Everything the framework produced for one ruleset + options."""

    patterns: list[str]
    options: CompileOptions
    #: optimised per-RE FSAs (the merger's input), indexed by rule id;
    #: :class:`~repro.counting.model.CountingFsa` under ``counting=True``
    fsas: list[Fsa]
    #: the K = ⌈N/M⌉ merged automata
    #: (:class:`~repro.counting.mfsa.CountingMfsa` under ``counting=True``
    #: when counting arcs survived the threshold)
    mfsas: list[Mfsa]
    stage_times: StageTimes
    merge_report: MergeReport
    #: one extended-ANML document per MFSA (None when emit_anml=False)
    anml: list[str] | None

    @property
    def total_input_states(self) -> int:
        return sum(fsa.num_states for fsa in self.fsas)

    @property
    def total_output_states(self) -> int:
        return sum(m.num_states for m in self.mfsas)


@contextmanager
def _stage(times: StageTimes, name: str, **span_attrs):
    """Time one stage into ``times.<name>`` and emit a ``compile.<name>``
    span around it (a no-op span when observability is off).  Each stage
    entry is a fault-injection point (``compile.stage``)."""
    with obs.span(f"compile.{name}", **span_attrs) as sp:
        faultinject.fire("compile.stage", stage=name)
        started = time.perf_counter()
        try:
            yield sp
        finally:
            setattr(times, name, time.perf_counter() - started)


def compile_ruleset(patterns: Sequence[str], options: CompileOptions | None = None) -> CompilationResult:
    """Run the full framework over a ruleset (see module docstring).

    With ``options.budget`` set, one :class:`~repro.guard.budget.
    BudgetMeter` is started here and charged cooperatively by every
    stage; violations surface as :class:`~repro.guard.errors.
    BudgetExceeded` branch errors naming the stage (and rule, when
    attributable).  Pathologically nested patterns that blow the
    interpreter's recursion limit are wrapped into
    :class:`~repro.guard.errors.CompileError` instead of escaping as
    bare ``RecursionError``."""
    options = options or CompileOptions()
    if options.counting:
        if options.grouping != "sequential":
            raise UsageError(
                f"counting compiles support only sequential grouping "
                f"(got {options.grouping!r})"
            )
        if options.stratify_charclasses:
            raise UsageError(
                "counting compiles do not support charclass stratification"
            )
        if options.reduce_mfsa:
            raise UsageError("counting compiles do not support MFSA reduction")
        if options.count_threshold < 2:
            raise UsageError(
                f"count_threshold must be >= 2 (got {options.count_threshold})"
            )
    times = StageTimes()
    meter = options.budget.start() if options.budget is not None else None

    with obs.span(
        "compile",
        rules=len(patterns),
        merging_factor=options.merging_factor,
        grouping=options.grouping,
    ) as root:
        # Front-end: lexical and syntactic analyses.
        with _stage(times, "frontend"):
            asts = []
            for rule, pattern in enumerate(patterns):
                faultinject.fire("compile.rule", pattern=pattern, rule=rule)
                try:
                    asts.append(parse(pattern))
                except RecursionError as exc:
                    raise CompileError(
                        "pattern nests beyond the recursion limit",
                        stage="frontend", rule=rule,
                    ) from exc
            if meter is not None:
                meter.check_deadline(stage="frontend")

        if options.counting:
            return _finish_counting(patterns, asts, options, times, meter, root)

        # Mid-end: AST → FSA (loop expansion + Thompson construction).
        with _stage(times, "ast_to_fsa"):
            asts = [
                optimize_ast(ast, options.optimize, meter=meter, rule=rule)
                for rule, ast in enumerate(asts)
            ]
            nfas = []
            for rule, (ast, pattern) in enumerate(zip(asts, patterns)):
                try:
                    nfa = construct_nfa(ast, pattern, options.optimize)
                except RecursionError as exc:
                    raise CompileError(
                        "automaton construction exceeded the recursion limit",
                        stage="ast_to_fsa", rule=rule,
                    ) from exc
                if meter is not None:
                    meter.charge_automaton(
                        nfa.num_states, nfa.num_transitions,
                        stage="ast_to_fsa", rule=rule,
                    )
                nfas.append(nfa)

        # Mid-end: single-FSA optimisation.
        with _stage(times, "single_opt"):
            fsas = [
                optimize_fsa(nfa, options.optimize, meter=meter, rule=rule)
                for rule, nfa in enumerate(nfas)
            ]
            if options.stratify_charclasses:
                fsas = stratify_ruleset(fsas)

        # Mid-end: merging.
        with _stage(times, "merging") as merge_span:
            merge_report = MergeReport()
            items = list(enumerate(fsas))
            if options.grouping == "sequential":
                mfsas = merge_ruleset(
                    items, options.merging_factor, report=merge_report,
                    seed_cap=options.seed_cap, min_walk_len=options.min_walk_len,
                    meter=meter,
                )
            elif options.grouping == "clustered":
                groups = similarity_groups(list(patterns), options.merging_factor)
                mfsas = merge_groups(items, groups, report=merge_report,
                                     seed_cap=options.seed_cap,
                                     min_walk_len=options.min_walk_len, meter=meter)
            else:
                raise UsageError(f"unknown grouping {options.grouping!r}")
            if options.reduce_mfsa:
                mfsas = [reduce_mfsa(m) for m in mfsas]
                merge_report.output_states = sum(m.num_states for m in mfsas)
                merge_report.output_transitions = sum(m.num_transitions for m in mfsas)
            merge_span.set(
                mfsas=len(mfsas),
                state_compression=round(merge_report.state_compression, 3),
            )

        # Back-end: extended-ANML generation.
        anml: list[str] | None = None
        if options.emit_anml:
            with _stage(times, "backend"):
                anml = [write_anml(mfsa, network_id=f"mfsa{i}") for i, mfsa in enumerate(mfsas)]
                if meter is not None:
                    meter.check_deadline(stage="backend")

        root.set(
            input_states=merge_report.input_states,
            output_states=merge_report.output_states,
        )

    return CompilationResult(
        patterns=list(patterns),
        options=options,
        fsas=fsas,
        mfsas=mfsas,
        stage_times=times,
        merge_report=merge_report,
        anml=anml,
    )


def _finish_counting(
    patterns: Sequence[str],
    asts: list,
    options: CompileOptions,
    times: StageTimes,
    meter,
    root,
) -> CompilationResult:
    """The ``counting=True`` mid/back-end: bounded repeats become counter
    registers instead of expanded state chains.

    Loop expansion is disabled so repeats survive to the counting
    builder, which applies the expand-vs-count policy per repeat
    (``count_threshold``).  Construction and ε-removal are one fused
    pass, so the ``single_opt`` stage reports zero; states/transitions
    charge ``meter`` as usual plus one ``counting.registers`` charge per
    counting arc — this is where a `[^\\n]{1000}`-style rule that blows
    ``max_states`` under expansion compiles within budget.  Merged
    automata with no surviving counting arcs drop to plain
    :class:`Mfsa` so every downstream consumer stays unrestricted.
    """
    # Mid-end: AST → counting FSA (fused construction + ε-removal).
    with _stage(times, "ast_to_fsa"):
        no_expand = dataclasses.replace(options.optimize, expand_loops=False)
        asts = [
            optimize_ast(ast, no_expand, meter=meter, rule=rule)
            for rule, ast in enumerate(asts)
        ]
        cfsas = []
        for rule, (ast, pattern) in enumerate(zip(asts, patterns)):
            try:
                cfsa = build_counting_fsa_from_ast(
                    ast, pattern, min_count_bound=options.count_threshold
                )
            except RecursionError as exc:
                raise CompileError(
                    "automaton construction exceeded the recursion limit",
                    stage="ast_to_fsa", rule=rule,
                ) from exc
            if meter is not None:
                meter.charge_automaton(
                    cfsa.num_states, len(cfsa.plain),
                    stage="ast_to_fsa", rule=rule,
                )
                meter.charge_counting_registers(len(cfsa.counting), rule=rule)
            cfsas.append(cfsa)

    # Mid-end: merging (Algorithm 1 over mixed plain/counting arcs).
    with _stage(times, "merging") as merge_span:
        merge_report = MergeReport()
        items = list(enumerate(cfsas))
        factor = options.merging_factor
        if factor <= 0 or factor >= len(items):
            groups = [items]
        else:
            groups = [items[i:i + factor] for i in range(0, len(items), factor)]
        mfsas: list = []
        for group in groups:
            group_report = CountingMergeReport()
            merged = merge_counting_fsas(group, report=group_report)
            merge_report.input_states += group_report.input_states
            merge_report.input_transitions += group_report.input_transitions
            merge_report.output_states += group_report.output_states
            merge_report.output_transitions += group_report.output_transitions
            merge_report.merged_transitions += (
                group_report.merged_plain + group_report.merged_counting
            )
            # Every repeat below the threshold expanded: no registers
            # left, so hand downstream the unrestricted plain model.
            mfsas.append(merged if merged.counting else merged.to_plain())
        if meter is not None:
            meter.check_deadline(stage="merging")
        merge_span.set(
            mfsas=len(mfsas),
            state_compression=round(merge_report.state_compression, 3),
            counting_arcs=sum(
                len(m.counting) for m in mfsas if isinstance(m, CountingMfsa)
            ),
        )

    # Back-end: extended-ANML generation (counting dialect where needed).
    anml: list[str] | None = None
    if options.emit_anml:
        with _stage(times, "backend"):
            anml = [
                write_counting_anml(m, network_id=f"cmfsa{i}")
                if isinstance(m, CountingMfsa)
                else write_anml(m, network_id=f"mfsa{i}")
                for i, m in enumerate(mfsas)
            ]
            if meter is not None:
                meter.check_deadline(stage="backend")

    root.set(
        input_states=merge_report.input_states,
        output_states=merge_report.output_states,
    )
    return CompilationResult(
        patterns=list(patterns),
        options=options,
        fsas=cfsas,
        mfsas=mfsas,
        stage_times=times,
        merge_report=merge_report,
        anml=anml,
    )
