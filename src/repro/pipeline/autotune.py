"""Merging-factor auto-tuning: profile a sample, pick M.

The paper observes that "there is no pre-defined optimal M applying for
every dataset" (§VI-C2) — DS9 peaks at M=100, PRO at M=10/20, the rest
at M=all, and the winner further depends on the thread budget.  This
module turns that observation into a tool: compile the ruleset at each
candidate factor, execute a *sample* of the real traffic, and pick the
factor minimising modelled latency for the deployment's thread count.

The profiling cost is one engine pass per candidate over the sample
(seconds at sample sizes); the returned report keeps every candidate's
numbers so the choice is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.cost import CostModel
from repro.engine.imfant import IMfantEngine
from repro.engine.multithread import MachineModel, simulate_parallel_latency
from repro.pipeline.compiler import CompileOptions, compile_ruleset

DEFAULT_CANDIDATES = (1, 2, 5, 10, 20, 50, 100, 0)


@dataclass
class CandidateResult:
    """One merging factor's profile."""

    merging_factor: int
    num_mfsas: int
    total_states: int
    state_compression: float
    #: modelled latency at the requested thread count (work units)
    latency: float
    #: single-thread modelled time (the Fig. 9 quantity)
    sequential_work: float

    @property
    def label(self) -> str:
        return "all" if self.merging_factor == 0 else str(self.merging_factor)


@dataclass
class AutotuneReport:
    """All candidates plus the selection."""

    candidates: list[CandidateResult] = field(default_factory=list)
    best: CandidateResult | None = None
    threads: int = 1

    def render(self) -> str:
        lines = [f"merging-factor autotune (threads={self.threads}):"]
        for candidate in self.candidates:
            marker = " <- selected" if candidate is self.best else ""
            lines.append(
                f"  M={candidate.label:>4}: {candidate.num_mfsas} MFSA(s), "
                f"{candidate.total_states} states "
                f"({candidate.state_compression:.1f}% comp.), "
                f"latency {candidate.latency:.0f}{marker}"
            )
        return "\n".join(lines)


def autotune_merging_factor(
    patterns: Sequence[str],
    sample: bytes | str,
    threads: int = 1,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    cost_model: CostModel | None = None,
    machine: MachineModel | None = None,
    options: CompileOptions | None = None,
    backend: str = "python",
) -> AutotuneReport:
    """Pick the merging factor minimising modelled latency on ``sample``.

    ``candidates`` follows the artifact convention (0 = all); factors
    ≥ len(patterns) alias with "all" and are deduplicated.  ``options``
    supplies the non-M compilation knobs (grouping, passes, …).
    ``backend`` selects the profiling engine; the work counters that
    feed the cost model are backend-invariant, so any backend gives the
    same selection (pick the fastest one for large samples).
    """
    if not patterns:
        raise ValueError("cannot autotune an empty ruleset")
    cost_model = cost_model or CostModel()
    machine = machine or MachineModel()
    base = options or CompileOptions()

    seen: set[int] = set()
    report = AutotuneReport(threads=threads)
    for factor in candidates:
        effective = 0 if factor <= 0 or factor >= len(patterns) else factor
        if effective in seen:
            continue
        seen.add(effective)

        compiled = compile_ruleset(
            list(patterns),
            CompileOptions(
                merging_factor=effective,
                optimize=base.optimize,
                grouping=base.grouping,
                stratify_charclasses=base.stratify_charclasses,
                seed_cap=base.seed_cap,
                min_walk_len=base.min_walk_len,
                reduce_mfsa=base.reduce_mfsa,
                emit_anml=False,
            ),
        )
        works = []
        for mfsa in compiled.mfsas:
            stats = IMfantEngine(mfsa, backend=backend).run(sample).stats
            works.append(cost_model.run_cost(stats))
        report.candidates.append(CandidateResult(
            merging_factor=effective,
            num_mfsas=len(compiled.mfsas),
            total_states=compiled.total_output_states,
            state_compression=compiled.merge_report.state_compression,
            latency=simulate_parallel_latency(works, threads, machine),
            sequential_work=sum(works),
        ))

    report.best = min(report.candidates, key=lambda c: c.latency)
    return report
