"""Execution auto-tuning: profile a sample, pick the plan.

Two planners live here, both following the same recipe — run the real
engines over a *sample* of the real traffic, feed the measured counters
to the :class:`~repro.engine.cost.CostModel`, pick the configuration
minimising modelled latency, and return an auditable report:

* :func:`autotune_merging_factor` — the paper's M knob.  "There is no
  pre-defined optimal M applying for every dataset" (§VI-C2): DS9 peaks
  at M=100, PRO at M=10/20, the rest at M=all, and the winner further
  depends on the thread budget.
* :func:`choose_scan_strategy` — mapping-parallel vs. sequential for a
  single stream.  An SFA mapping scan (:mod:`repro.engine.sfa`) does
  strictly more per-chunk work than a plain scan (the simultaneous
  entry-pair columns — overhead factor κ measured from the sample), but
  splits the stream with zero shared bytes; it wins once the thread
  count beats κ.  The crossover is a property of the *ruleset and
  traffic* (κ grows with live entry pairs), so it is measured, not
  assumed.
* :func:`choose_backend` — which execution backend actually runs
  fastest on this ruleset/traffic pair.  The per-backend cost model
  (:meth:`~repro.engine.cost.CostModel.backend_run_cost`) supplies the
  prediction column; selection itself is by measured warm wall-clock,
  because the numpy backend's fixed per-char dispatch overhead makes
  it *lose* to interpretive python on sparse-activation rulesets (the
  dotstar regression) — exactly the kind of inversion a pure model
  would keep mispredicting.

The profiling cost is one engine pass per candidate over the sample
(seconds at sample sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import time

from repro.counting.mfsa import CountingMfsa
from repro.engine.cost import CostModel
from repro.engine.imfant import IMfantEngine
from repro.engine.multithread import MachineModel, simulate_parallel_latency
from repro.engine.sfa import SfaScanner
from repro.guard.errors import AllocationFailed
from repro.mfsa.model import Mfsa
from repro.pipeline.compiler import CompileOptions, compile_ruleset

DEFAULT_CANDIDATES = (1, 2, 5, 10, 20, 50, 100, 0)


@dataclass
class CandidateResult:
    """One merging factor's profile."""

    merging_factor: int
    num_mfsas: int
    total_states: int
    state_compression: float
    #: modelled latency at the requested thread count (work units)
    latency: float
    #: single-thread modelled time (the Fig. 9 quantity)
    sequential_work: float

    @property
    def label(self) -> str:
        return "all" if self.merging_factor == 0 else str(self.merging_factor)


@dataclass
class AutotuneReport:
    """All candidates plus the selection."""

    candidates: list[CandidateResult] = field(default_factory=list)
    best: CandidateResult | None = None
    threads: int = 1

    def render(self) -> str:
        lines = [f"merging-factor autotune (threads={self.threads}):"]
        for candidate in self.candidates:
            marker = " <- selected" if candidate is self.best else ""
            lines.append(
                f"  M={candidate.label:>4}: {candidate.num_mfsas} MFSA(s), "
                f"{candidate.total_states} states "
                f"({candidate.state_compression:.1f}% comp.), "
                f"latency {candidate.latency:.0f}{marker}"
            )
        return "\n".join(lines)


def autotune_merging_factor(
    patterns: Sequence[str],
    sample: bytes | str,
    threads: int = 1,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    cost_model: CostModel | None = None,
    machine: MachineModel | None = None,
    options: CompileOptions | None = None,
    backend: str = "python",
) -> AutotuneReport:
    """Pick the merging factor minimising modelled latency on ``sample``.

    ``candidates`` follows the artifact convention (0 = all); factors
    ≥ len(patterns) alias with "all" and are deduplicated.  ``options``
    supplies the non-M compilation knobs (grouping, passes, …).
    ``backend`` selects the profiling engine; the work counters that
    feed the cost model are backend-invariant, so any backend gives the
    same selection (pick the fastest one for large samples).
    """
    if not patterns:
        raise ValueError("cannot autotune an empty ruleset")
    cost_model = cost_model or CostModel()
    machine = machine or MachineModel()
    base = options or CompileOptions()

    seen: set[int] = set()
    report = AutotuneReport(threads=threads)
    for factor in candidates:
        effective = 0 if factor <= 0 or factor >= len(patterns) else factor
        if effective in seen:
            continue
        seen.add(effective)

        compiled = compile_ruleset(
            list(patterns),
            CompileOptions(
                merging_factor=effective,
                optimize=base.optimize,
                grouping=base.grouping,
                stratify_charclasses=base.stratify_charclasses,
                seed_cap=base.seed_cap,
                min_walk_len=base.min_walk_len,
                reduce_mfsa=base.reduce_mfsa,
                emit_anml=False,
            ),
        )
        works = []
        for mfsa in compiled.mfsas:
            stats = IMfantEngine(mfsa, backend=backend).run(sample).stats
            works.append(cost_model.run_cost(stats))
        report.candidates.append(CandidateResult(
            merging_factor=effective,
            num_mfsas=len(compiled.mfsas),
            total_states=compiled.total_output_states,
            state_compression=compiled.merge_report.state_compression,
            latency=simulate_parallel_latency(works, threads, machine),
            sequential_work=sum(works),
        ))

    report.best = min(report.candidates, key=lambda c: c.latency)
    return report


@dataclass
class ScanStrategyReport:
    """Measured crossover between mapping-parallel and sequential scan."""

    #: modelled single-thread time of one plain scan of the sample
    sequential_work: float
    #: modelled total work of the mapping scan (all chunks, incl. the
    #: simultaneous-run columns)
    mapping_work: float
    #: modelled mapping latency at the requested thread count
    mapping_latency: float
    #: mapping overhead κ = mapping_work / sequential_work
    overhead: float
    threads: int
    chunk_size: int
    chunks: int
    #: "sfa" when mapping-parallel beats sequential at ``threads``
    chosen: str = "sequential"

    def render(self) -> str:
        return (
            f"scan-strategy autotune (threads={self.threads}, "
            f"chunk_size={self.chunk_size}):\n"
            f"  sequential work {self.sequential_work:.0f}\n"
            f"  mapping work {self.mapping_work:.0f} over {self.chunks} "
            f"chunk(s) (overhead κ={self.overhead:.2f})\n"
            f"  mapping latency {self.mapping_latency:.0f}"
            f" -> {self.chosen} selected"
        )


def choose_scan_strategy(
    mfsa: Mfsa,
    sample: bytes | str,
    threads: int = 4,
    chunk_size: int = 4096,
    cost_model: CostModel | None = None,
    machine: MachineModel | None = None,
    backend: str = "python",
) -> ScanStrategyReport:
    """Measure whether mapping-parallel scanning beats sequential here.

    Profiles both sides on ``sample``: one plain engine pass (the
    sequential baseline) and one :class:`~repro.engine.sfa.SfaScanner`
    pass per chunk (the mapping side, whose measured ``linear_ops``
    captures the simultaneous-run overhead for *this* automaton on
    *this* traffic).  The mapping side's latency is the machine-model
    makespan of the per-chunk works at ``threads`` — the same
    simulation that drives the Fig. 10 scaling figures, since CPython
    threads cannot exhibit the hardware's parallelism directly.
    """
    payload = sample.encode("latin-1") if isinstance(sample, str) else sample
    cost_model = cost_model or CostModel()
    machine = machine or MachineModel()

    sequential_stats = IMfantEngine(mfsa, backend=backend).run(payload).stats
    sequential_work = cost_model.run_cost(sequential_stats)

    scanner = SfaScanner(mfsa)
    chunk_works = []
    for start in range(0, max(len(payload), 1), chunk_size):
        scan = scanner.scan_chunk(payload[start : start + chunk_size])
        chunk_works.append(cost_model.mapping_run_cost(scan.stats, scan.linear_ops))
    mapping_work = sum(chunk_works)
    mapping_latency = simulate_parallel_latency(chunk_works, threads, machine)

    report = ScanStrategyReport(
        sequential_work=sequential_work,
        mapping_work=mapping_work,
        mapping_latency=mapping_latency,
        overhead=(mapping_work / sequential_work) if sequential_work > 0 else 1.0,
        threads=threads,
        chunk_size=chunk_size,
        chunks=len(chunk_works),
        chosen="sfa" if mapping_latency < sequential_work else "sequential",
    )
    return report


@dataclass
class BackendCandidate:
    """One backend's profile on the sample."""

    backend: str
    #: best warm wall-clock over the measurement repeats; None when the
    #: backend was unavailable on this automaton (allocation failure)
    measured_seconds: float | None
    #: cost-model prediction (CostModel.backend_run_cost, work units)
    modelled_cost: float
    note: str = ""

    @property
    def throughput(self) -> float | None:
        """Sample bytes per measured second; None when unavailable."""
        return None if not self.measured_seconds else self._bytes / self.measured_seconds

    _bytes: int = 0


@dataclass
class BackendReport:
    """All backend candidates plus the measured selection."""

    candidates: list[BackendCandidate] = field(default_factory=list)
    best: BackendCandidate | None = None
    sample_bytes: int = 0

    def render(self) -> str:
        lines = [f"backend autotune (sample={self.sample_bytes} bytes):"]
        for candidate in self.candidates:
            marker = " <- selected" if candidate is self.best else ""
            if candidate.measured_seconds is None:
                lines.append(
                    f"  {candidate.backend:>6}: unavailable ({candidate.note})"
                )
                continue
            mbps = self.sample_bytes / candidate.measured_seconds / 1e6
            lines.append(
                f"  {candidate.backend:>6}: {mbps:8.2f} MB/s measured, "
                f"modelled {candidate.modelled_cost:.0f}{marker}"
            )
        return "\n".join(lines)


def choose_backend(
    mfsa: "Mfsa | CountingMfsa",
    sample: bytes | str,
    backends: Sequence[str] | None = None,
    cost_model: CostModel | None = None,
    repeats: int = 3,
) -> BackendReport:
    """Measure which execution backend is fastest for this traffic.

    Each candidate engine is warmed first (two passes — enough for the
    lazy cache to reach steady state; the dense candidate is then
    promoted explicitly so the measurement covers the compiled tier,
    not the warm-up ramp) and timed over ``repeats`` passes, keeping
    the best.  Selection is by measured wall-clock; the cost-model
    prediction rides along per candidate so a surprising pick is
    auditable.  Measured selection is the point: the model's numpy
    column is structurally optimistic on sparse-activation rulesets
    (fixed kernel-dispatch overhead per char), and measurement is what
    keeps such backends from being chosen where they lose.

    ``backends=None`` picks the default ladder, prepending ``counting``
    when ``mfsa`` is a :class:`~repro.counting.mfsa.CountingMfsa` with
    live counting arcs — the plain candidates then race over its
    expansion (:meth:`CountingMfsa.expand`), so the report shows
    exactly what demoting off the counting rung would cost.

    Backends whose setup fails allocation are reported as unavailable
    rather than raised: the remaining rungs still race.
    """
    payload = sample.encode("latin-1") if isinstance(sample, str) else sample
    cost_model = cost_model or CostModel()
    has_registers = isinstance(mfsa, CountingMfsa) and bool(mfsa.counting)
    if backends is None:
        backends = ("dense", "lazy", "numpy", "python")
        if has_registers:
            backends = ("counting",) + backends

    # Counters are backend-invariant; one lazy pass is the cheap way to
    # get them for the model's prediction column.  (Counting automata
    # profile on the counting backend instead — a lazy pass would first
    # expand, paying exactly the state growth counting exists to avoid.)
    stats_backend = "counting" if has_registers else "lazy"
    stats = IMfantEngine(mfsa, backend=stats_backend).run(payload).stats

    report = BackendReport(sample_bytes=len(payload))
    reference: set | None = None
    for backend in backends:
        candidate = BackendCandidate(
            backend=backend,
            measured_seconds=None,
            modelled_cost=cost_model.backend_run_cost(stats, backend),
        )
        candidate._bytes = len(payload)
        report.candidates.append(candidate)
        try:
            engine = IMfantEngine(mfsa, backend=backend)
            engine.run(payload, collect_stats=False)
            matches = engine.run(payload, collect_stats=False).matches
            if backend == "dense":
                engine.promote_dense(force=True)
        except AllocationFailed as exc:
            candidate.note = f"allocation failure: {exc}"
            continue
        if reference is None:
            reference = matches
        elif matches != reference:
            raise AssertionError(
                f"backend {backend!r} disagrees with {backends[0]!r} on the sample"
            )
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            engine.run(payload, collect_stats=False)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        candidate.measured_seconds = best

    timed = [c for c in report.candidates if c.measured_seconds is not None]
    if timed:
        report.best = min(timed, key=lambda c: c.measured_seconds)
    return report
