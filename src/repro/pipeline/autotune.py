"""Execution auto-tuning: profile a sample, pick the plan.

Two planners live here, both following the same recipe — run the real
engines over a *sample* of the real traffic, feed the measured counters
to the :class:`~repro.engine.cost.CostModel`, pick the configuration
minimising modelled latency, and return an auditable report:

* :func:`autotune_merging_factor` — the paper's M knob.  "There is no
  pre-defined optimal M applying for every dataset" (§VI-C2): DS9 peaks
  at M=100, PRO at M=10/20, the rest at M=all, and the winner further
  depends on the thread budget.
* :func:`choose_scan_strategy` — mapping-parallel vs. sequential for a
  single stream.  An SFA mapping scan (:mod:`repro.engine.sfa`) does
  strictly more per-chunk work than a plain scan (the simultaneous
  entry-pair columns — overhead factor κ measured from the sample), but
  splits the stream with zero shared bytes; it wins once the thread
  count beats κ.  The crossover is a property of the *ruleset and
  traffic* (κ grows with live entry pairs), so it is measured, not
  assumed.

The profiling cost is one engine pass per candidate over the sample
(seconds at sample sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.cost import CostModel
from repro.engine.imfant import IMfantEngine
from repro.engine.multithread import MachineModel, simulate_parallel_latency
from repro.engine.sfa import SfaScanner
from repro.mfsa.model import Mfsa
from repro.pipeline.compiler import CompileOptions, compile_ruleset

DEFAULT_CANDIDATES = (1, 2, 5, 10, 20, 50, 100, 0)


@dataclass
class CandidateResult:
    """One merging factor's profile."""

    merging_factor: int
    num_mfsas: int
    total_states: int
    state_compression: float
    #: modelled latency at the requested thread count (work units)
    latency: float
    #: single-thread modelled time (the Fig. 9 quantity)
    sequential_work: float

    @property
    def label(self) -> str:
        return "all" if self.merging_factor == 0 else str(self.merging_factor)


@dataclass
class AutotuneReport:
    """All candidates plus the selection."""

    candidates: list[CandidateResult] = field(default_factory=list)
    best: CandidateResult | None = None
    threads: int = 1

    def render(self) -> str:
        lines = [f"merging-factor autotune (threads={self.threads}):"]
        for candidate in self.candidates:
            marker = " <- selected" if candidate is self.best else ""
            lines.append(
                f"  M={candidate.label:>4}: {candidate.num_mfsas} MFSA(s), "
                f"{candidate.total_states} states "
                f"({candidate.state_compression:.1f}% comp.), "
                f"latency {candidate.latency:.0f}{marker}"
            )
        return "\n".join(lines)


def autotune_merging_factor(
    patterns: Sequence[str],
    sample: bytes | str,
    threads: int = 1,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    cost_model: CostModel | None = None,
    machine: MachineModel | None = None,
    options: CompileOptions | None = None,
    backend: str = "python",
) -> AutotuneReport:
    """Pick the merging factor minimising modelled latency on ``sample``.

    ``candidates`` follows the artifact convention (0 = all); factors
    ≥ len(patterns) alias with "all" and are deduplicated.  ``options``
    supplies the non-M compilation knobs (grouping, passes, …).
    ``backend`` selects the profiling engine; the work counters that
    feed the cost model are backend-invariant, so any backend gives the
    same selection (pick the fastest one for large samples).
    """
    if not patterns:
        raise ValueError("cannot autotune an empty ruleset")
    cost_model = cost_model or CostModel()
    machine = machine or MachineModel()
    base = options or CompileOptions()

    seen: set[int] = set()
    report = AutotuneReport(threads=threads)
    for factor in candidates:
        effective = 0 if factor <= 0 or factor >= len(patterns) else factor
        if effective in seen:
            continue
        seen.add(effective)

        compiled = compile_ruleset(
            list(patterns),
            CompileOptions(
                merging_factor=effective,
                optimize=base.optimize,
                grouping=base.grouping,
                stratify_charclasses=base.stratify_charclasses,
                seed_cap=base.seed_cap,
                min_walk_len=base.min_walk_len,
                reduce_mfsa=base.reduce_mfsa,
                emit_anml=False,
            ),
        )
        works = []
        for mfsa in compiled.mfsas:
            stats = IMfantEngine(mfsa, backend=backend).run(sample).stats
            works.append(cost_model.run_cost(stats))
        report.candidates.append(CandidateResult(
            merging_factor=effective,
            num_mfsas=len(compiled.mfsas),
            total_states=compiled.total_output_states,
            state_compression=compiled.merge_report.state_compression,
            latency=simulate_parallel_latency(works, threads, machine),
            sequential_work=sum(works),
        ))

    report.best = min(report.candidates, key=lambda c: c.latency)
    return report


@dataclass
class ScanStrategyReport:
    """Measured crossover between mapping-parallel and sequential scan."""

    #: modelled single-thread time of one plain scan of the sample
    sequential_work: float
    #: modelled total work of the mapping scan (all chunks, incl. the
    #: simultaneous-run columns)
    mapping_work: float
    #: modelled mapping latency at the requested thread count
    mapping_latency: float
    #: mapping overhead κ = mapping_work / sequential_work
    overhead: float
    threads: int
    chunk_size: int
    chunks: int
    #: "sfa" when mapping-parallel beats sequential at ``threads``
    chosen: str = "sequential"

    def render(self) -> str:
        return (
            f"scan-strategy autotune (threads={self.threads}, "
            f"chunk_size={self.chunk_size}):\n"
            f"  sequential work {self.sequential_work:.0f}\n"
            f"  mapping work {self.mapping_work:.0f} over {self.chunks} "
            f"chunk(s) (overhead κ={self.overhead:.2f})\n"
            f"  mapping latency {self.mapping_latency:.0f}"
            f" -> {self.chosen} selected"
        )


def choose_scan_strategy(
    mfsa: Mfsa,
    sample: bytes | str,
    threads: int = 4,
    chunk_size: int = 4096,
    cost_model: CostModel | None = None,
    machine: MachineModel | None = None,
    backend: str = "python",
) -> ScanStrategyReport:
    """Measure whether mapping-parallel scanning beats sequential here.

    Profiles both sides on ``sample``: one plain engine pass (the
    sequential baseline) and one :class:`~repro.engine.sfa.SfaScanner`
    pass per chunk (the mapping side, whose measured ``linear_ops``
    captures the simultaneous-run overhead for *this* automaton on
    *this* traffic).  The mapping side's latency is the machine-model
    makespan of the per-chunk works at ``threads`` — the same
    simulation that drives the Fig. 10 scaling figures, since CPython
    threads cannot exhibit the hardware's parallelism directly.
    """
    payload = sample.encode("latin-1") if isinstance(sample, str) else sample
    cost_model = cost_model or CostModel()
    machine = machine or MachineModel()

    sequential_stats = IMfantEngine(mfsa, backend=backend).run(payload).stats
    sequential_work = cost_model.run_cost(sequential_stats)

    scanner = SfaScanner(mfsa)
    chunk_works = []
    for start in range(0, max(len(payload), 1), chunk_size):
        scan = scanner.scan_chunk(payload[start : start + chunk_size])
        chunk_works.append(cost_model.mapping_run_cost(scan.stats, scan.linear_ops))
    mapping_work = sum(chunk_works)
    mapping_latency = simulate_parallel_latency(chunk_works, threads, machine)

    report = ScanStrategyReport(
        sequential_work=sequential_work,
        mapping_work=mapping_work,
        mapping_latency=mapping_latency,
        overhead=(mapping_work / sequential_work) if sequential_work > 0 else 1.0,
        threads=threads,
        chunk_size=chunk_size,
        chunks=len(chunk_works),
        chosen="sfa" if mapping_latency < sequential_work else "sequential",
    )
    return report
