"""The multi-level compilation framework (paper §IV, Fig. 4).

Front-end (lexical/syntactic analysis) → mid-end (AST→FSA conversion,
single-FSA optimisation, merging with factor M) → back-end (extended
ANML generation), each stage individually timed for the Fig. 8
compilation-time analysis.
"""

from repro.pipeline.compiler import (
    CompilationResult,
    CompileOptions,
    StageTimes,
    compile_ruleset,
)
from repro.pipeline.autotune import AutotuneReport, autotune_merging_factor

__all__ = [
    "CompilationResult",
    "CompileOptions",
    "StageTimes",
    "compile_ruleset",
    "AutotuneReport",
    "autotune_merging_factor",
]
