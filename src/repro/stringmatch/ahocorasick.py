"""Aho–Corasick multi-pattern exact string matching.

The classic trie + failure-link automaton: all occurrences of every
pattern are reported in one pass over the stream, in time
O(|stream| + matches).  Used as

* the literal-matching half of the Hyperscan-style decomposition
  baseline (:mod:`repro.decompose`) the paper positions itself against;
* a self-contained multi-string matcher for the examples.

Matches are reported as ``(pattern_id, end_offset)`` with 1-based end
offsets, the same convention as the automata engines.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence


class AhoCorasick:
    """An immutable matching automaton over a set of byte-string patterns.

    Empty patterns are rejected (they would match at every offset).
    Duplicate patterns are allowed and each reports under its own id.
    """

    def __init__(self, patterns: Sequence[bytes | str]) -> None:
        normalised: list[bytes] = []
        for pattern in patterns:
            data = pattern.encode("latin-1") if isinstance(pattern, str) else bytes(pattern)
            if not data:
                raise ValueError("empty patterns are not supported")
            normalised.append(data)
        self.patterns: list[bytes] = normalised

        # Trie as list-of-dicts; node 0 is the root.
        self._goto: list[dict[int, int]] = [{}]
        self._output: list[list[int]] = [[]]
        for pattern_id, pattern in enumerate(self.patterns):
            self._insert(pattern, pattern_id)
        self._fail: list[int] = [0] * len(self._goto)
        self._build_failure_links()

    # -- construction -------------------------------------------------------

    def _insert(self, pattern: bytes, pattern_id: int) -> None:
        node = 0
        for byte in pattern:
            nxt = self._goto[node].get(byte)
            if nxt is None:
                nxt = len(self._goto)
                self._goto[node][byte] = nxt
                self._goto.append({})
                self._output.append([])
            node = nxt
        self._output[node].append(pattern_id)

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for child in self._goto[0].values():
            self._fail[child] = 0
            queue.append(child)
        while queue:
            node = queue.popleft()
            for byte, child in self._goto[node].items():
                queue.append(child)
                fallback = self._fail[node]
                while fallback and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[child] = self._goto[fallback].get(byte, 0)
                if self._fail[child] == child:  # root self-edge guard
                    self._fail[child] = 0
                self._output[child].extend(self._output[self._fail[child]])

    # -- matching ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._goto)

    def iter_matches(self, data: bytes | str) -> Iterator[tuple[int, int]]:
        """Yield ``(pattern_id, end_offset)`` for every occurrence."""
        payload = data.encode("latin-1") if isinstance(data, str) else data
        node = 0
        for position, byte in enumerate(payload, start=1):
            while node and byte not in self._goto[node]:
                node = self._fail[node]
            node = self._goto[node].get(byte, 0)
            for pattern_id in self._output[node]:
                yield pattern_id, position

    def find_all(self, data: bytes | str) -> set[tuple[int, int]]:
        """All matches as a set (the engines' reporting convention)."""
        return set(self.iter_matches(data))

    def contains_any(self, data: bytes | str) -> bool:
        """Early-exit containment test (prefilter use)."""
        for _ in self.iter_matches(data):
            return True
        return False

    def match_positions(self, data: bytes | str) -> dict[int, list[int]]:
        """pattern_id -> sorted end offsets (convenience for examples)."""
        out: dict[int, list[int]] = {}
        for pattern_id, end in self.iter_matches(data):
            out.setdefault(pattern_id, []).append(end)
        for ends in out.values():
            ends.sort()
        return out
