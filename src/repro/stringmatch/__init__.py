"""Exact string-matching substrate (Aho–Corasick).

Pattern matching on plain strings is the "well-defined problem addressed
by various existing algorithms" the paper contrasts REs against (§I);
the multi-pattern Aho–Corasick automaton is the substrate behind the
Hyperscan-style decomposition baseline in :mod:`repro.decompose`.
"""

from repro.stringmatch.ahocorasick import AhoCorasick

__all__ = ["AhoCorasick"]
