"""Transition labels: sets of byte symbols over the 256-symbol alphabet.

Every non-epsilon transition in an FSA or MFSA is enabled by a
:class:`CharClass` — an immutable set of byte values represented as a
256-bit integer bitmask.  Single characters are singleton classes, POSIX
bracket expressions (``[a-f0-9]``, ``[^\\n]``, ``[[:digit:]]``) are larger
classes, and ``.`` is the full alphabet minus newline (POSIX ERE).

Two labels are *mergeable* by the MFSA merging algorithm iff they describe
exactly the same character set, i.e. iff their bitmasks are equal (paper
§III-A: ``CC_k,1 == CC_l,2``).  Using a canonical bitmask makes that test a
single integer comparison.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator

ALPHABET_SIZE = 256
FULL_MASK = (1 << ALPHABET_SIZE) - 1

#: POSIX character class names -> predicate over byte values (ASCII rules).
_POSIX_CLASSES = {
    "alnum": lambda b: chr(b).isalnum() and b < 128,
    "alpha": lambda b: chr(b).isalpha() and b < 128,
    "blank": lambda b: b in (0x20, 0x09),
    "cntrl": lambda b: b < 0x20 or b == 0x7F,
    "digit": lambda b: 0x30 <= b <= 0x39,
    "graph": lambda b: 0x21 <= b <= 0x7E,
    "lower": lambda b: 0x61 <= b <= 0x7A,
    "print": lambda b: 0x20 <= b <= 0x7E,
    "punct": lambda b: (0x21 <= b <= 0x7E) and not chr(b).isalnum(),
    "space": lambda b: b in (0x20, 0x09, 0x0A, 0x0B, 0x0C, 0x0D),
    "upper": lambda b: 0x41 <= b <= 0x5A,
    "xdigit": lambda b: chr(b) in "0123456789abcdefABCDEF",
}


class CharClass:
    """An immutable set of byte symbols, the label of one transition.

    Instances are hashable and compare by their bitmask, so identical
    classes are interchangeable regardless of how they were built.
    """

    __slots__ = ("mask",)

    def __init__(self, mask: int) -> None:
        if not 0 <= mask <= FULL_MASK:
            raise ValueError(f"mask out of range: {mask:#x}")
        self.mask = mask

    # -- constructors ---------------------------------------------------

    @classmethod
    def single(cls, char: int | str) -> "CharClass":
        """Singleton class for one byte value or one-character string."""
        return cls(1 << _as_byte(char))

    @classmethod
    def from_chars(cls, chars: Iterable[int | str]) -> "CharClass":
        mask = 0
        for c in chars:
            mask |= 1 << _as_byte(c)
        return cls(mask)

    @classmethod
    def from_range(cls, lo: int | str, hi: int | str) -> "CharClass":
        lo_b, hi_b = _as_byte(lo), _as_byte(hi)
        if lo_b > hi_b:
            raise ValueError(f"invalid range: {lo!r}-{hi!r}")
        return cls(((1 << (hi_b + 1)) - 1) & ~((1 << lo_b) - 1))

    @classmethod
    def posix(cls, name: str) -> "CharClass":
        """Named POSIX class, e.g. ``posix('digit')`` for ``[[:digit:]]``."""
        try:
            predicate = _POSIX_CLASSES[name]
        except KeyError:
            raise ValueError(f"unknown POSIX character class: [:{name}:]") from None
        return cls.from_chars(b for b in range(ALPHABET_SIZE) if predicate(b))

    @classmethod
    def any_char(cls, include_newline: bool = False) -> "CharClass":
        """The ``.`` metacharacter: every byte, minus newline by default."""
        mask = FULL_MASK
        if not include_newline:
            mask &= ~(1 << 0x0A)
        return cls(mask)

    @classmethod
    def empty(cls) -> "CharClass":
        return cls(0)

    @classmethod
    def full(cls) -> "CharClass":
        return cls(FULL_MASK)

    # -- set algebra ----------------------------------------------------

    def union(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask | other.mask)

    def intersection(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask & other.mask)

    def difference(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask & ~other.mask)

    def negate(self) -> "CharClass":
        return CharClass(FULL_MASK & ~self.mask)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __invert__ = negate

    # -- queries ---------------------------------------------------------

    def contains(self, char: int | str) -> bool:
        return bool(self.mask >> _as_byte(char) & 1)

    __contains__ = contains

    def is_empty(self) -> bool:
        return self.mask == 0

    def is_single(self) -> bool:
        """True when the class holds exactly one character (paper: a plain
        character transition, as opposed to a CC transition)."""
        return self.mask != 0 and (self.mask & (self.mask - 1)) == 0

    def __len__(self) -> int:
        return self.mask.bit_count()

    def chars(self) -> Iterator[int]:
        """Yield the member byte values in ascending order."""
        mask = self.mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def sample(self) -> int:
        """An arbitrary member byte (the smallest); class must be non-empty."""
        if self.mask == 0:
            raise ValueError("empty character class has no members")
        return (self.mask & -self.mask).bit_length() - 1

    def overlaps(self, other: "CharClass") -> bool:
        return bool(self.mask & other.mask)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharClass) and self.mask == other.mask

    def __hash__(self) -> int:
        return hash(self.mask)

    def __repr__(self) -> str:
        return f"CharClass({self.pattern()!r})"

    # -- rendering ---------------------------------------------------------

    def pattern(self) -> str:
        """Render back to an ERE fragment (canonical, possibly bracketed)."""
        if self.mask == 0:
            return "[]"  # unmatchable; not valid ERE, diagnostic only
        if self.mask == CharClass.any_char().mask:
            return "."
        if self.is_single():
            return _escape_char(self.sample())
        members = list(self.chars())
        if len(members) > ALPHABET_SIZE // 2:
            inverse = CharClass(FULL_MASK & ~self.mask)
            return "[^" + _render_members(list(inverse.chars())) + "]"
        return "[" + _render_members(members) + "]"


def _as_byte(char: int | str) -> int:
    """Normalise a one-character string or an int to a byte value."""
    if isinstance(char, str):
        if len(char) != 1:
            raise ValueError(f"expected a single character, got {char!r}")
        char = ord(char)
    if not 0 <= char < ALPHABET_SIZE:
        raise ValueError(f"byte value out of range: {char}")
    return char


_ERE_SPECIAL = set(b".^$*+?()[]{}|\\")


def _escape_char(b: int) -> str:
    if b in _ERE_SPECIAL:
        return "\\" + chr(b)
    if 0x20 <= b <= 0x7E:
        return chr(b)
    return f"\\x{b:02x}"


def _bracket_escape(b: int) -> str:
    # Inside a bracket expression only a few characters are special.
    if b in (ord("]"), ord("\\"), ord("^"), ord("-")):
        return "\\" + chr(b)
    if 0x20 <= b <= 0x7E:
        return chr(b)
    return f"\\x{b:02x}"


def _render_members(members: list[int]) -> str:
    """Render sorted byte values as compact ranges: ``a-f0-9``."""
    parts: list[str] = []
    i = 0
    while i < len(members):
        j = i
        while j + 1 < len(members) and members[j + 1] == members[j] + 1:
            j += 1
        if j - i >= 2:
            parts.append(_bracket_escape(members[i]) + "-" + _bracket_escape(members[j]))
        else:
            parts.extend(_bracket_escape(members[k]) for k in range(i, j + 1))
        i = j + 1
    return "".join(parts)


@lru_cache(maxsize=None)
def single(char: int | str) -> CharClass:
    """Cached singleton-class constructor (hot path in construction)."""
    return CharClass.single(char)
