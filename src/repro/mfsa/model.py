"""The formal MFSA model: ``z = (Q, Σ, Δ, I, F, J, R)`` (paper §III-B).

An :class:`Mfsa` extends the plain NFA with:

* ``R`` — the identifiers of the merged FSAs (rules);
* per-transition *belonging* sets (which rules each transition derives
  from) — the ``bel`` vector of the paper's COO representation (Fig. 2);
* ``I`` — one initial state per rule (merged FSAs keep their own q0,
  possibly sharing the state with other rules' path interiors);
* ``F`` — per-rule final-state sets;
* the activation function ``J`` lives in the execution engines and in
  :mod:`repro.mfsa.activation`; the model stores the static data it needs
  (initial/final/belonging masks).

Rule identifiers are the caller's (global ruleset ids); internally each
rule also has a dense *slot* in ``[0, len(R))`` used for bitmask encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.automata.fsa import Fsa, Transition
from repro.labels import CharClass


@dataclass(frozen=True)
class MTransition:
    """One MFSA arc: ``src --label--> dst`` belonging to ``bel`` rules.

    ``bel`` is a frozenset of *rule ids* (not slots); the paper's ``bel``
    COO vector.
    """

    src: int
    dst: int
    label: CharClass
    bel: frozenset[int]

    def __repr__(self) -> str:
        ids = ",".join(str(r) for r in sorted(self.bel))
        return f"{self.src}-[{self.label.pattern()}|{{{ids}}}]->{self.dst}"


@dataclass
class Mfsa:
    """A Multi-RE FSA; see module docstring.

    Invariants (checked by :meth:`validate`):

    * every transition's ``bel`` is a non-empty subset of ``rule_ids``;
    * every rule has exactly one initial state and ≥1 final state;
    * per-rule projections are well-formed FSAs.
    """

    num_states: int = 0
    transitions: list[MTransition] = field(default_factory=list)
    #: rule id -> its initial state (the per-FSA q0; the model's I).
    initials: dict[int, int] = field(default_factory=dict)
    #: rule id -> its final states (the model's F, partitioned by rule).
    finals: dict[int, set[int]] = field(default_factory=dict)
    #: source pattern per rule (diagnostics / ANML round-trips).
    patterns: dict[int, str] = field(default_factory=dict)

    # -- basic accessors ---------------------------------------------------

    @property
    def rule_ids(self) -> list[int]:
        """R — the merged rule identifiers, in merge order."""
        return list(self.initials.keys())

    @property
    def num_rules(self) -> int:
        return len(self.initials)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def add_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def add_transition(self, src: int, dst: int, label: CharClass, bel: Iterable[int]) -> None:
        bel_set = frozenset(bel)
        if not bel_set:
            raise ValueError("transition must belong to at least one rule")
        self.transitions.append(MTransition(src, dst, label, bel_set))

    # -- slots & masks (engine support) --------------------------------------

    def slot_of(self) -> dict[int, int]:
        """rule id -> dense slot index used by bitmask encodings."""
        return {rule: slot for slot, rule in enumerate(self.initials)}

    def initial_mask_per_state(self) -> list[int]:
        """For each state, bitmask (over slots) of rules whose q0 it is."""
        slots = self.slot_of()
        masks = [0] * self.num_states
        for rule, state in self.initials.items():
            masks[state] |= 1 << slots[rule]
        return masks

    def final_mask_per_state(self) -> list[int]:
        """For each state, bitmask (over slots) of rules it is final for."""
        slots = self.slot_of()
        masks = [0] * self.num_states
        for rule, states in self.finals.items():
            for state in states:
                masks[state] |= 1 << slots[rule]
        return masks

    def belonging_masks(self) -> list[int]:
        """Per-transition bitmask (over slots) of its belonging set."""
        slots = self.slot_of()
        out = []
        for t in self.transitions:
            mask = 0
            for rule in t.bel:
                mask |= 1 << slots[rule]
            out.append(mask)
        return out

    # -- projections & structure ---------------------------------------------

    def projection(self, rule: int) -> Fsa:
        """The plain FSA of one merged rule: transitions whose belonging
        contains ``rule``, with that rule's initial/finals.

        The merging algorithm must keep every projection isomorphic to the
        corresponding input FSA (after state renaming) — the central
        structural-correctness property.
        """
        if rule not in self.initials:
            raise KeyError(f"unknown rule id {rule}")
        arcs = [t for t in self.transitions if rule in t.bel]
        states = {self.initials[rule], *self.finals[rule]}
        for t in arcs:
            states.add(t.src)
            states.add(t.dst)
        mapping = {old: new for new, old in enumerate(sorted(states))}
        fsa = Fsa(num_states=len(mapping), initial=mapping[self.initials[rule]],
                  pattern=self.patterns.get(rule))
        fsa.finals = {mapping[f] for f in self.finals[rule]}
        for t in arcs:
            fsa.transitions.append(Transition(mapping[t.src], mapping[t.dst], t.label))
        return fsa

    def arcs_by_label(self) -> dict[int, list[int]]:
        """label mask -> indices of transitions with that label (merge index)."""
        index: dict[int, list[int]] = {}
        for i, t in enumerate(self.transitions):
            index.setdefault(t.label.mask, []).append(i)
        return index

    def outgoing_index(self) -> dict[int, list[int]]:
        """src state -> transition indices."""
        index: dict[int, list[int]] = {}
        for i, t in enumerate(self.transitions):
            index.setdefault(t.src, []).append(i)
        return index

    def alphabet_mask(self) -> int:
        mask = 0
        for t in self.transitions:
            mask |= t.label.mask
        return mask

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        rules = set(self.initials)
        if set(self.finals) != rules:
            raise ValueError("initials/finals rule sets disagree")
        for rule, state in self.initials.items():
            if not 0 <= state < self.num_states:
                raise ValueError(f"initial state of rule {rule} out of range")
        for rule, states in self.finals.items():
            if not states:
                raise ValueError(f"rule {rule} has no final states")
            for state in states:
                if not 0 <= state < self.num_states:
                    raise ValueError(f"final state {state} of rule {rule} out of range")
        for t in self.transitions:
            if not 0 <= t.src < self.num_states or not 0 <= t.dst < self.num_states:
                raise ValueError(f"transition {t} out of range")
            if not t.bel <= rules:
                raise ValueError(f"transition {t} belongs to unknown rules {t.bel - rules}")
            if t.label.is_empty():
                raise ValueError(f"transition {t} has an empty label")
        # No duplicate (src, dst, label) arcs: merging must deduplicate.
        seen: set[tuple[int, int, int]] = set()
        for t in self.transitions:
            key = (t.src, t.dst, t.label.mask)
            if key in seen:
                raise ValueError(f"duplicate arc {t}")
            seen.add(key)

    def __repr__(self) -> str:
        return (
            f"Mfsa(states={self.num_states}, transitions={self.num_transitions}, "
            f"rules={self.num_rules})"
        )


def from_single_fsa(rule: int, fsa: Fsa, pattern: Optional[str] = None) -> Mfsa:
    """Wrap one ε-free FSA as a trivial MFSA (the M=1 / no-merging case;
    also Algorithm 1's ``generateNew(z, A[1])`` seeding step)."""
    if fsa.has_epsilon():
        raise ValueError("MFSA construction requires ε-free FSAs")
    mfsa = Mfsa(num_states=fsa.num_states)
    mfsa.initials[rule] = fsa.initial
    mfsa.finals[rule] = set(fsa.finals)
    if pattern or fsa.pattern:
        mfsa.patterns[rule] = pattern or fsa.pattern  # type: ignore[assignment]
    for t in fsa.transitions:
        mfsa.add_transition(t.src, t.dst, t.label, (rule,))  # type: ignore[arg-type]
    return mfsa


def validate_projections(mfsa: Mfsa, originals: dict[int, Fsa]) -> None:
    """Assert every per-rule projection is isomorphic to its input FSA.

    Exponential isomorphism search — test-sized automata only; production
    code relies on the merger's injective-relabeling guarantee instead.
    """
    from repro.automata.fsa import isomorphic

    for rule, original in originals.items():
        projected = mfsa.projection(rule)
        if not isomorphic(projected, original.trimmed()):
            raise AssertionError(f"projection of rule {rule} lost isomorphism")
