"""Post-merge MFSA state reduction: belonging-aware suffix merging.

After Algorithm 1 runs, the MFSA can still contain states with identical
futures that the greedy walk never paired (they were discovered through
conflicting structures, or arrived from different incoming FSAs).  This
pass collapses them with the same backward-bisimulation idea as
:mod:`repro.automata.statemerge`, extended to the MFSA's extra
structure: two states may merge only when they agree on

* their outgoing arcs *including belonging sets* — ``(label, bel, dst)``
  triples must be identical;
* the rules they are final for, and
* the rules they are initial for (an initial state seeds activation, so
  merging it with a non-initial state would create spurious attempts).

Under those conditions the states are indistinguishable to the
activation semantics, so matches are preserved exactly (property-tested)
and every per-rule projection stays language-equivalent.  The pass runs
to a fixpoint; the pipeline exposes it as ``reduce_mfsa=True``.  In
practice the greedy merger already catches most tail equality and the
belonging sets rarely coincide afterwards, so gains are modest — the
pass mostly serves restrictive-merging configurations
(``min_walk_len > 1``) and hand-built MFSAs.
"""

from __future__ import annotations

from repro.mfsa.model import Mfsa, MTransition


def reduce_mfsa(mfsa: Mfsa, max_rounds: int | None = None) -> Mfsa:
    """Collapse belonging-equivalent suffix states (see module doc)."""
    current = mfsa
    rounds = 0
    while True:
        mapping = _merge_round(current)
        if mapping is None:
            return current
        current = _apply(current, mapping)
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            return current


def _merge_round(mfsa: Mfsa) -> dict[int, int] | None:
    outgoing: dict[int, set[tuple[int, frozenset[int], int]]] = {
        state: set() for state in range(mfsa.num_states)
    }
    for t in mfsa.transitions:
        outgoing[t.src].add((t.label.mask, t.bel, t.dst))

    final_for: dict[int, frozenset[int]] = {}
    for state in range(mfsa.num_states):
        final_for[state] = frozenset(
            rule for rule, finals in mfsa.finals.items() if state in finals
        )
    initial_for: dict[int, frozenset[int]] = {}
    for state in range(mfsa.num_states):
        initial_for[state] = frozenset(
            rule for rule, q0 in mfsa.initials.items() if q0 == state
        )

    representative: dict[tuple, int] = {}
    mapping: dict[int, int] = {}
    merged_any = False
    for state in range(mfsa.num_states):
        signature = (
            final_for[state],
            initial_for[state],
            frozenset(outgoing[state]),
        )
        if signature in representative:
            mapping[state] = representative[signature]
            merged_any = True
        else:
            representative[signature] = state
            mapping[state] = state
    return mapping if merged_any else None


def _apply(mfsa: Mfsa, mapping: dict[int, int]) -> Mfsa:
    kept = sorted(set(mapping.values()))
    dense = {old: new for new, old in enumerate(kept)}
    rename = {state: dense[mapping[state]] for state in range(mfsa.num_states)}

    out = Mfsa(num_states=len(kept))
    out.initials = {rule: rename[q0] for rule, q0 in mfsa.initials.items()}
    out.finals = {rule: {rename[f] for f in finals} for rule, finals in mfsa.finals.items()}
    out.patterns = dict(mfsa.patterns)

    # Arcs falling together keep the union of their belongings: the
    # merged states had identical (label, bel, dst) sets, so unioning is
    # only needed when *different sources* map to the same new source —
    # their arcs were identical triples and dedupe to one.
    merged: dict[tuple[int, int, int], frozenset[int]] = {}
    order: list[tuple[int, int, int]] = []
    label_of: dict[int, object] = {}
    for t in mfsa.transitions:
        key = (rename[t.src], rename[t.dst], t.label.mask)
        label_of.setdefault(t.label.mask, t.label)
        if key not in merged:
            merged[key] = t.bel
            order.append(key)
        else:
            merged[key] = merged[key] | t.bel
    for src, dst, mask in order:
        out.transitions.append(
            MTransition(src, dst, label_of[mask], merged[(src, dst, mask)])  # type: ignore[arg-type]
        )
    out.validate()
    return out
