"""Activation-function semantics of MFSA execution (paper §III-B, Eqs. 4–6).

This module is the *reference* executor for MFSAs: a direct, readable
transcription of the formal rules, used as the oracle that the optimised
engines in :mod:`repro.engine` must agree with.

Per-state activation sets are bitmasks over dense rule slots.  One step of
the extended transition function Δ, for every arc ``q1 --c--> q2`` enabled
by the read character:

``J(q2) ∪= (J(q1) ∪ init(q1)) ∩ bel(q1→q2)``

* ``init(q1)`` adds every rule whose initial state is ``q1`` (Eq. 4 — a
  rule becomes active when its q0 is departed from; this also starts new
  match attempts at every stream offset, the iNFAnt convention);
* the intersection with the belonging set drops rules the traversed arc
  does not belong to (Eq. 6);
* a rule ``j`` with ``q2 ∈ F_j`` still active after the intersection
  yields a match (Eq. 5); with ``pop_on_final`` the engine also removes
  ``j`` from the arriving activation set, which is the paper's literal
  Eq. 5 (see DESIGN.md §5 for why *keep* is the default).

A path whose activation set empties dies — `J(q1) ∩ J(q2) ≠ ∅` along
every traversed arc is exactly the paper's transition-validity condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.mfsa.model import Mfsa


@dataclass(frozen=True)
class ActivationConfig:
    """Execution-semantics knobs shared by the reference and the engines."""

    #: Apply Eq. 5 literally: deactivate a rule on the path that just
    #: produced its match.  Off by default (see DESIGN.md §5).
    pop_on_final: bool = False


def reference_match(
    mfsa: Mfsa,
    data: bytes | str,
    config: ActivationConfig | None = None,
) -> set[tuple[int, int]]:
    """Match the stream against every merged rule; returns
    ``{(rule_id, end_offset)}`` with 1-based end offsets.

    Rules whose language contains the empty string match at every offset
    ``0..len(data)`` (degenerate but well-defined; the synthetic rulesets
    never produce such rules).
    """
    config = config or ActivationConfig()
    payload = data.encode("latin-1") if isinstance(data, str) else data

    slots = mfsa.slot_of()
    slot_to_rule = {slot: rule for rule, slot in slots.items()}
    init_mask = mfsa.initial_mask_per_state()
    final_mask = mfsa.final_mask_per_state()
    bel_masks = mfsa.belonging_masks()

    matches: set[tuple[int, int]] = set()
    for rule in _empty_matching_rules(mfsa):
        matches.update((rule, end) for end in range(len(payload) + 1))

    # Arc lists indexed by symbol for the reference step loop.
    by_symbol: list[list[tuple[int, int, int]]] = [[] for _ in range(256)]
    for i, t in enumerate(mfsa.transitions):
        entry = (t.src, t.dst, bel_masks[i])
        for byte in t.label.chars():
            by_symbol[byte].append(entry)

    activation = [0] * mfsa.num_states  # J per state
    for position, byte in enumerate(payload, start=1):
        incoming = [0] * mfsa.num_states
        for src, dst, bel in by_symbol[byte]:
            active = (activation[src] | init_mask[src]) & bel
            if active:
                incoming[dst] |= active
        activation = incoming
        for state, mask in enumerate(incoming):
            hit = mask & final_mask[state]
            if hit:
                for slot in _bits(hit):
                    matches.add((slot_to_rule[slot], position))
                if config.pop_on_final:
                    activation[state] &= ~hit
    return matches


def active_set_trace(mfsa: Mfsa, data: bytes | str) -> list[int]:
    """Per-position total number of active (state, rule) pairs — the
    quantity behind the paper's Table II active-FSA statistics."""
    payload = data.encode("latin-1") if isinstance(data, str) else data
    init_mask = mfsa.initial_mask_per_state()
    bel_masks = mfsa.belonging_masks()
    by_symbol: list[list[tuple[int, int, int]]] = [[] for _ in range(256)]
    for i, t in enumerate(mfsa.transitions):
        entry = (t.src, t.dst, bel_masks[i])
        for byte in t.label.chars():
            by_symbol[byte].append(entry)

    trace: list[int] = []
    activation = [0] * mfsa.num_states
    for byte in payload:
        incoming = [0] * mfsa.num_states
        for src, dst, bel in by_symbol[byte]:
            active = (activation[src] | init_mask[src]) & bel
            if active:
                incoming[dst] |= active
        activation = incoming
        trace.append(sum(mask.bit_count() for mask in activation))
    return trace


def _empty_matching_rules(mfsa: Mfsa) -> Iterable[int]:
    for rule, q0 in mfsa.initials.items():
        if q0 in mfsa.finals[rule]:
            yield rule


def _bits(mask: int) -> Iterable[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
