"""Structural statistics of merged automata: who shares what.

Compression percentages (Fig. 7) summarise merging in one number; these
helpers expose the structure behind it — how many transitions are shared
by how many rules, which rule pairs overlap most, and each rule's
sharing ratio — the quantities one inspects when deciding merging
factors or clustering strategies for a new ruleset.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations

from repro.mfsa.model import Mfsa


@dataclass
class SharingProfile:
    """Aggregate sharing structure of one MFSA."""

    #: sharing histogram: belonging-set size -> number of transitions
    histogram: dict[int, int] = field(default_factory=dict)
    #: per rule: fraction of its transitions shared with ≥1 other rule
    rule_sharing_ratio: dict[int, float] = field(default_factory=dict)
    #: rule-pair overlap: (rule_a, rule_b) -> transitions shared by both
    pair_overlap: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def shared_transitions(self) -> int:
        return sum(count for size, count in self.histogram.items() if size > 1)

    @property
    def exclusive_transitions(self) -> int:
        return self.histogram.get(1, 0)

    @property
    def max_sharing(self) -> int:
        """Largest number of rules any single transition serves."""
        return max(self.histogram, default=0)

    def top_pairs(self, count: int = 5) -> list[tuple[tuple[int, int], int]]:
        return sorted(self.pair_overlap.items(), key=lambda kv: -kv[1])[:count]


def sharing_profile(mfsa: Mfsa, pair_limit: int | None = 10_000) -> SharingProfile:
    """Compute the sharing structure (see module doc).

    ``pair_limit`` caps the number of (rule, rule) pairs tracked for the
    overlap table (quadratic in sharing width); ``None`` disables it.
    """
    profile = SharingProfile()
    histogram: Counter[int] = Counter()
    per_rule_total: Counter[int] = Counter()
    per_rule_shared: Counter[int] = Counter()
    pair_overlap: Counter[tuple[int, int]] = Counter()
    pairs_tracked = 0

    for t in mfsa.transitions:
        size = len(t.bel)
        histogram[size] += 1
        for rule in t.bel:
            per_rule_total[rule] += 1
            if size > 1:
                per_rule_shared[rule] += 1
        if size > 1 and (pair_limit is None or pairs_tracked < pair_limit):
            for pair in combinations(sorted(t.bel), 2):
                pair_overlap[pair] += 1
                pairs_tracked += 1

    profile.histogram = dict(histogram)
    profile.pair_overlap = dict(pair_overlap)
    for rule in mfsa.rule_ids:
        total = per_rule_total.get(rule, 0)
        profile.rule_sharing_ratio[rule] = (
            per_rule_shared.get(rule, 0) / total if total else 0.0
        )
    return profile


def describe_profile(profile: SharingProfile, max_rows: int = 8) -> str:
    """Human-readable rendering used by examples and the CLI."""
    lines = ["sharing histogram (|belonging| -> #transitions):"]
    for size in sorted(profile.histogram):
        lines.append(f"  {size:>3} rules: {profile.histogram[size]} transitions")
    lines.append(
        f"shared {profile.shared_transitions} / exclusive "
        f"{profile.exclusive_transitions}; widest sharing {profile.max_sharing}"
    )
    top = profile.top_pairs(max_rows)
    if top:
        lines.append("top overlapping rule pairs:")
        for (a, b), count in top:
            lines.append(f"  rules {a} & {b}: {count} shared transitions")
    return "\n".join(lines)
