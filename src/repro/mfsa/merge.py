"""Algorithm 1: merging a set of FSAs into a single MFSA (paper §III-A).

The merger consumes *optimised* ε-free FSAs (loop-expanded, multiplicity-
simplified — see :mod:`repro.automata.optimize`) and folds them into an
:class:`repro.mfsa.model.Mfsa` one at a time:

1. the first FSA seeds the MFSA verbatim (``generateNew(z, A[1])``);
2. for each incoming FSA ``a``, transitions of ``z`` and ``a`` with the
   *same label* (single character, or character class with the identical
   member set — the sets X and Y of §III-A) seed common sub-path walks;
   each maximal walk is recorded in a :class:`MergingStructure` holding
   the 4-tuples ``(q_i,z , q_j,z , q_n,a , q_m,a)``;
3. the merging structures are combined into a *consistent* state
   correspondence (injective, functional — see below), the incoming FSA
   is relabelled through it (``relabel``), and its transitions are merged
   into ``z``: shared arcs gain ``a``'s identifier in their belonging set,
   new arcs are copied (``generateNew(mrg, a)``).

Consistency requirement (implicit in the paper, enforced explicitly
here): the relabeling map ``a-state -> z-state`` must be injective and
functional, so that the per-rule projection of the resulting MFSA stays
isomorphic to the input FSA and no rule's morphology is disturbed.
Merging structures are committed greedily, longest walk first; tuples
that would break consistency are dropped.

The three outcomes of the paper's §III-A fall out naturally: no common
sub-paths → the FSA is copied disjointly; some common sub-paths → shared
arcs get the new identifier; identical FSA → every arc's belonging is
extended and no state is added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import repro.obs as obs
from repro.automata.fsa import Fsa
from repro.guard.errors import UsageError
from repro.mfsa.model import Mfsa, MTransition, from_single_fsa


@dataclass(frozen=True)
class PathTuple:
    """One matched transition pair: the paper's 4-tuple plus its label.

    ``(z_src, z_dst)`` is the transition in the evolving MFSA,
    ``(a_src, a_dst)`` the isomorphic transition in the incoming FSA.
    """

    z_src: int
    z_dst: int
    a_src: int
    a_dst: int
    label_mask: int


@dataclass
class MergingStructure:
    """A maximal common sub-path: an ordered list of matched pairs (MS).

    ``seed_pairs`` records the (z-transition-index, a-transition-index)
    pairs making up the walk, used to avoid re-discovering suffixes of an
    already-found walk as separate structures.
    """

    tuples: list[PathTuple] = field(default_factory=list)
    seed_pairs: list[tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tuples)

    def push(self, item: PathTuple) -> None:
        self.tuples.append(item)


@dataclass
class MergeReport:
    """Counters describing one ruleset merge (complexity/compression data)."""

    input_states: int = 0
    input_transitions: int = 0
    output_states: int = 0
    output_transitions: int = 0
    label_comparisons: int = 0
    walk_steps: int = 0
    merged_transitions: int = 0
    merging_structures: int = 0

    @property
    def state_compression(self) -> float:
        """%comp_states of §VI-A (0 when nothing was merged)."""
        if self.input_states == 0:
            return 0.0
        return 100.0 * (self.input_states - self.output_states) / self.input_states

    @property
    def transition_compression(self) -> float:
        if self.input_transitions == 0:
            return 0.0
        return 100.0 * (self.input_transitions - self.output_transitions) / self.input_transitions


#: Cap on same-label seed candidates examined per incoming transition.
#: Bounds the quadratic seed phase on labels that occur extremely often;
#: `None` disables the cap (paper-faithful exhaustive search).
DEFAULT_SEED_CAP: Optional[int] = 64


def merge_fsas(
    items: Sequence[tuple[int, Fsa]],
    report: MergeReport | None = None,
    seed_cap: Optional[int] = DEFAULT_SEED_CAP,
    collect_structures: bool = False,
    strategy: str = "longest-first",
    min_walk_len: int = 1,
    meter=None,
) -> Mfsa | tuple[Mfsa, list[MergingStructure]]:
    """Merge ``(rule_id, fsa)`` pairs into one MFSA (Algorithm 1).

    FSAs must be ε-free; rule ids must be distinct.  When
    ``collect_structures`` is true the merging structures of the *last*
    incoming FSA are returned too (used by tests mirroring Fig. 2).
    ``meter`` is an optional :class:`~repro.guard.budget.BudgetMeter`:
    the output automaton's growth is charged per incoming FSA and the
    deadline is checked periodically inside the quadratic seed search.

    ``strategy`` picks the order in which merging structures commit into
    the relabeling map: ``"longest-first"`` (default — longer shared
    paths win conflicts) or ``"discovery-order"`` (the order Algorithm 1
    finds them; the ablation comparator).  ``min_walk_len`` discards
    merging structures shorter than the given number of transitions —
    at ruleset scale, 1-arc "coincidence" merges dominate unless
    filtered, and real engines prefer longer shared runs for locality.
    Either way the map stays a bijection, so correctness is unaffected —
    only compression varies.
    """
    if strategy not in _STRATEGIES:
        raise UsageError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
    if not items:
        raise UsageError("cannot merge an empty ruleset")
    seen_rules = [rule for rule, _ in items]
    if len(set(seen_rules)) != len(seen_rules):
        raise UsageError("duplicate rule ids in merge input")
    for _, fsa in items:
        if fsa.has_epsilon():
            raise UsageError("merge requires ε-free FSAs (run the optimiser first)")

    stats = report if report is not None else MergeReport()
    stats.input_states = sum(fsa.num_states for _, fsa in items)
    stats.input_transitions = sum(fsa.num_transitions for _, fsa in items)

    with obs.span("merge.group", rules=len(items)) as group_span:
        first_rule, first_fsa = items[0]
        mfsa = from_single_fsa(first_rule, first_fsa)
        if meter is not None:
            meter.charge_automaton(
                mfsa.num_states, mfsa.num_transitions, stage="merging", rule=first_rule
            )
        structures: list[MergingStructure] = []
        for rule, fsa in items[1:]:
            structures = _merge_one(
                mfsa, rule, fsa, stats, seed_cap, strategy, min_walk_len, meter=meter
            )

        stats.output_states = mfsa.num_states
        stats.output_transitions = mfsa.num_transitions
        mfsa.validate()
        group_span.set(
            seeds_tried=stats.label_comparisons,
            walk_steps=stats.walk_steps,
            output_states=stats.output_states,
            state_compression=round(stats.state_compression, 3),
        )
    if collect_structures:
        return mfsa, structures
    return mfsa


def merge_ruleset(
    items: Sequence[tuple[int, Fsa]],
    merging_factor: int,
    report: MergeReport | None = None,
    seed_cap: Optional[int] = DEFAULT_SEED_CAP,
    min_walk_len: int = 1,
    meter=None,
) -> list[Mfsa]:
    """Merge a ruleset in M-sized sequential groups → K=⌈N/M⌉ MFSAs.

    ``merging_factor <= 0`` means "all" (merge the entire ruleset into one
    MFSA), matching the artifact's ``M=0`` convention.  Sequential
    sampling follows the paper's §VI; see :func:`merge_groups` for the
    similarity-clustered alternative.
    """
    if merging_factor <= 0 or merging_factor >= len(items):
        groups = [list(range(len(items)))]
    else:
        groups = [
            list(range(i, min(i + merging_factor, len(items))))
            for i in range(0, len(items), merging_factor)
        ]
    return merge_groups(items, groups, report=report, seed_cap=seed_cap,
                        min_walk_len=min_walk_len, meter=meter)


def merge_groups(
    items: Sequence[tuple[int, Fsa]],
    groups: Sequence[Sequence[int]],
    report: MergeReport | None = None,
    seed_cap: Optional[int] = DEFAULT_SEED_CAP,
    min_walk_len: int = 1,
    meter=None,
) -> list[Mfsa]:
    """Merge a ruleset along an explicit partition into item-index groups
    (e.g. from :func:`repro.mfsa.clustering.similarity_groups`)."""
    stats = report if report is not None else MergeReport()
    out: list[Mfsa] = []
    for group in groups:
        group_report = MergeReport()
        merged = merge_fsas([items[i] for i in group], report=group_report,
                            seed_cap=seed_cap, min_walk_len=min_walk_len, meter=meter)
        assert isinstance(merged, Mfsa)
        _accumulate(stats, group_report)
        out.append(merged)
    return out


def _accumulate(total: MergeReport, part: MergeReport) -> None:
    total.input_states += part.input_states
    total.input_transitions += part.input_transitions
    total.output_states += part.output_states
    total.output_transitions += part.output_transitions
    total.label_comparisons += part.label_comparisons
    total.walk_steps += part.walk_steps
    total.merged_transitions += part.merged_transitions
    total.merging_structures += part.merging_structures


# ---------------------------------------------------------------------------
# One incoming FSA
# ---------------------------------------------------------------------------


_STRATEGIES = ("longest-first", "discovery-order")


def _merge_one(
    mfsa: Mfsa,
    rule: int,
    fsa: Fsa,
    stats: MergeReport,
    seed_cap: Optional[int],
    strategy: str = "longest-first",
    min_walk_len: int = 1,
    meter=None,
) -> list[MergingStructure]:
    seeds_before = stats.label_comparisons
    states_before = mfsa.num_states
    transitions_before = mfsa.num_transitions
    with obs.span("merge.fsa", rule=rule) as sp:
        structures = _find_merging_structures(mfsa, fsa, stats, seed_cap, meter=meter, rule=rule)
        walks_found = len(structures)
        if min_walk_len > 1:
            structures = [ms for ms in structures if len(ms) >= min_walk_len]
        mapping = _consistent_mapping(mfsa, structures, strategy)
        _relabel_and_merge(mfsa, rule, fsa, mapping, stats)
        if meter is not None:
            meter.charge_automaton(
                mfsa.num_states - states_before,
                mfsa.num_transitions - transitions_before,
                stage="merging",
                rule=rule,
            )
        sp.set(
            seeds_tried=stats.label_comparisons - seeds_before,
            walks_found=walks_found,
            walks_kept=len(structures),
            walks_discarded=walks_found - len(structures),
            mapped_states=len(mapping),
        )
    return structures


def _find_merging_structures(
    mfsa: Mfsa,
    fsa: Fsa,
    stats: MergeReport,
    seed_cap: Optional[int],
    meter=None,
    rule: Optional[int] = None,
) -> list[MergingStructure]:
    """Walk common sub-paths seeded at every same-label transition pair.

    Mirrors Algorithm 1's nested loops over the COO ``idx`` vectors: each
    (z-transition, a-transition) pair with an identical label starts a
    walk that extends while the successor transitions keep matching, and
    each maximal walk becomes one Merging Structure.  The seed search is
    the quadratic heart of the merge, so the budget deadline is checked
    every ``check_stride`` label comparisons when a meter is present.
    """
    z_by_label = mfsa.arcs_by_label()
    z_out = mfsa.outgoing_index()
    z_arcs = mfsa.transitions

    a_arcs = list(fsa.labelled_transitions())
    a_out: dict[int, list[int]] = {}
    for i, t in enumerate(a_arcs):
        a_out.setdefault(t.src, []).append(i)

    structures: list[MergingStructure] = []
    seen_seeds: set[tuple[int, int]] = set()
    stride = meter.budget.check_stride if meter is not None else 0

    for ai, at in enumerate(a_arcs):
        candidates = z_by_label.get(at.label.mask, ())  # type: ignore[union-attr]
        if seed_cap is not None:
            candidates = candidates[:seed_cap]
        for zi in candidates:
            stats.label_comparisons += 1
            if meter is not None and stats.label_comparisons % stride == 0:
                meter.check_deadline(stage="merging", rule=rule)
            if (zi, ai) in seen_seeds:
                continue
            ms = _walk(z_arcs, z_out, a_arcs, a_out, zi, ai, stats)
            # Mark every pair on the walk as seeded so overlapping suffix
            # walks are not re-discovered as separate structures.
            seen_seeds.update(ms.seed_pairs)
            structures.append(ms)
            stats.merging_structures += 1
    return structures


def _walk(
    z_arcs: list[MTransition],
    z_out: dict[int, list[int]],
    a_arcs,
    a_out: dict[int, list[int]],
    zi: int,
    ai: int,
    stats: MergeReport,
) -> MergingStructure:
    """Extend a matched pair forward while successor labels keep matching.

    Follows a single chain (the paper walks ``next(r), next(t)`` and stops
    at the first difference); at branch points the first matching
    successor pair in index order is taken.  A visited set prevents
    looping on cyclic automata (e.g. Kleene-star back arcs).
    """
    ms = MergingStructure()
    visited: set[tuple[int, int]] = set()
    cur_z, cur_a = zi, ai
    while (cur_z, cur_a) not in visited:
        visited.add((cur_z, cur_a))
        zt = z_arcs[cur_z]
        at = a_arcs[cur_a]
        ms.push(PathTuple(zt.src, zt.dst, at.src, at.dst, at.label.mask))
        ms.seed_pairs.append((cur_z, cur_a))
        stats.walk_steps += 1
        nxt = _next_matching_pair(z_arcs, z_out, a_arcs, a_out, zt.dst, at.dst, stats)
        if nxt is None:
            break
        cur_z, cur_a = nxt
    return ms


def _next_matching_pair(
    z_arcs: list[MTransition],
    z_out: dict[int, list[int]],
    a_arcs,
    a_out: dict[int, list[int]],
    z_state: int,
    a_state: int,
    stats: MergeReport,
) -> tuple[int, int] | None:
    for ai in a_out.get(a_state, ()):
        a_mask = a_arcs[ai].label.mask
        for zi in z_out.get(z_state, ()):
            stats.label_comparisons += 1
            if z_arcs[zi].label.mask == a_mask:
                return zi, ai
    return None


def _consistent_mapping(
    mfsa: Mfsa,
    structures: list[MergingStructure],
    strategy: str = "longest-first",
) -> dict[int, int]:
    """Combine merging structures into an injective a-state → z-state map.

    Structures are committed longest-first; a tuple is committed only when
    both of its endpoint bindings are compatible with the map built so far
    (functional and injective).  Longer shared paths therefore win over
    shorter conflicting ones — the greedy heuristic behind Algorithm 1's
    ``relabel(ms, a)``.
    """
    forward: dict[int, int] = {}  # a-state -> z-state
    backward: dict[int, int] = {}  # z-state -> a-state
    ordered = (
        sorted(structures, key=len, reverse=True)
        if strategy == "longest-first"
        else structures
    )
    for ms in ordered:
        for item in ms.tuples:
            bindings = ((item.a_src, item.z_src), (item.a_dst, item.z_dst))
            if _jointly_compatible(forward, backward, bindings):
                for a, z in bindings:
                    forward[a] = z
                    backward[z] = a
            else:
                # An incompatible tuple interrupts this structure's chain:
                # the remaining suffix would attach to unmapped interior
                # states, so the rest of the walk is abandoned.
                break
    return forward


def _jointly_compatible(
    forward: dict[int, int],
    backward: dict[int, int],
    bindings: tuple[tuple[int, int], ...],
) -> bool:
    """Would committing all ``(a, z)`` bindings keep the map a bijection?

    The bindings of one tuple must be checked against each other as well
    as against the committed map: a self-loop on one side matched to a
    plain arc on the other would otherwise corrupt injectivity.
    """
    staged_fwd: dict[int, int] = {}
    staged_bwd: dict[int, int] = {}
    for a, z in bindings:
        bound_z = forward.get(a, staged_fwd.get(a))
        if bound_z is not None:
            if bound_z != z:
                return False
            continue
        bound_a = backward.get(z, staged_bwd.get(z))
        if bound_a is not None and bound_a != a:
            return False
        staged_fwd[a] = z
        staged_bwd[z] = a
    return True


def _relabel_and_merge(
    mfsa: Mfsa, rule: int, fsa: Fsa, mapping: dict[int, int], stats: MergeReport
) -> None:
    """Relabel the incoming FSA through ``mapping`` and fold it into ``z``.

    Unmapped states get fresh MFSA state numbers (disjoint relabeling);
    arcs already present in ``z`` (same endpoints and label) gain ``rule``
    in their belonging set, new arcs are appended with ``bel = {rule}``.
    """
    relabel = dict(mapping)
    for state in range(fsa.num_states):
        if state not in relabel:
            relabel[state] = mfsa.add_state()

    arc_index = {(t.src, t.dst, t.label.mask): i for i, t in enumerate(mfsa.transitions)}
    for t in fsa.labelled_transitions():
        src, dst = relabel[t.src], relabel[t.dst]
        key = (src, dst, t.label.mask)  # type: ignore[union-attr]
        existing = arc_index.get(key)
        if existing is not None:
            old = mfsa.transitions[existing]
            mfsa.transitions[existing] = MTransition(old.src, old.dst, old.label, old.bel | {rule})
            stats.merged_transitions += 1
        else:
            mfsa.add_transition(src, dst, t.label, (rule,))  # type: ignore[arg-type]
            arc_index[key] = len(mfsa.transitions) - 1

    mfsa.initials[rule] = relabel[fsa.initial]
    mfsa.finals[rule] = {relabel[f] for f in fsa.finals}
    if fsa.pattern is not None:
        mfsa.patterns[rule] = fsa.pattern
