"""Partial character-class merging via alphabet stratification (§VI-A).

The baseline merger shares CC transitions only when their member sets are
*identical*.  The paper flags partial sharing — merging the common
characters of ``[abce]`` and ``[bcd]`` — as a possible improvement; this
module implements it as an opt-in pre-merge pass.

Approach (classic alphabet stratification): compute the coarsest
partition of the 256-symbol alphabet such that every transition label in
the ruleset is a union of partition blocks (iterated refinement by
intersection).  Each CC arc is then split into one parallel arc per
contained block.  Arcs with equal block labels across REs merge exactly,
so the shared sub-classes (``[bc]`` above) are represented once.

The rewrite is language-preserving per FSA (parallel arcs' labels union
back to the original class), and — unlike the naive partial merge the
paper warns about in Fig. 5b — remains sound under MFSA execution
because the activation function tracks belongings per split arc (a
property test matches stratified vs plain rulesets).  The cost is more
transitions per automaton; the ablation bench quantifies the trade-off.
"""

from __future__ import annotations

from repro.automata.fsa import Fsa, Transition
from repro.labels import FULL_MASK, CharClass


def alphabet_partition(label_masks: list[int]) -> list[int]:
    """Coarsest partition (list of block bitmasks) such that every input
    mask is a union of blocks.  Runs iterated refinement: start with the
    full alphabet, split each block by every label into in/out halves."""
    blocks = [FULL_MASK]
    for mask in label_masks:
        refined: list[int] = []
        for block in blocks:
            inside = block & mask
            outside = block & ~mask
            if inside:
                refined.append(inside)
            if outside:
                refined.append(outside)
        blocks = refined
    return blocks


def stratify_ruleset(fsas: list[Fsa]) -> list[Fsa]:
    """Split every CC arc of every FSA into per-block parallel arcs, using
    the partition induced by the whole ruleset's labels."""
    label_masks = sorted(
        {t.label.mask for fsa in fsas for t in fsa.labelled_transitions()}  # type: ignore[union-attr]
    )
    blocks = alphabet_partition(label_masks)
    return [_stratify_fsa(fsa, blocks) for fsa in fsas]


def _stratify_fsa(fsa: Fsa, blocks: list[int]) -> Fsa:
    out = Fsa(num_states=fsa.num_states, initial=fsa.initial, finals=set(fsa.finals), pattern=fsa.pattern)
    for t in fsa.transitions:
        if t.is_epsilon():
            raise ValueError("stratification requires ε-free FSAs")
        mask = t.label.mask  # type: ignore[union-attr]
        for block in blocks:
            piece = mask & block
            if piece:
                out.transitions.append(Transition(t.src, t.dst, CharClass(piece)))
    return out
