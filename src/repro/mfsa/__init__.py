"""The MFSA: Multi-RE Finite State Automaton (paper §III).

* :mod:`repro.mfsa.model` — the formal model ``z = (Q, Σ, Δ, I, F, J, R)``
  with belonging-annotated transitions and per-rule projections.
* :mod:`repro.mfsa.merge` — Algorithm 1: iterative merging of FSAs into an
  MFSA via common sub-path discovery and consistent relabeling.
* :mod:`repro.mfsa.activation` — the activation-function semantics
  (Eqs. 4–6) as an executable reference.
* :mod:`repro.mfsa.ccpartial` — opt-in partial character-class merging
  (the paper's §VI-A future-work extension).
"""

from repro.mfsa.model import Mfsa, MTransition, validate_projections
from repro.mfsa.merge import (
    MergeReport,
    MergingStructure,
    merge_fsas,
    merge_groups,
    merge_ruleset,
)
from repro.mfsa.activation import ActivationConfig, reference_match
from repro.mfsa.ccpartial import stratify_ruleset
from repro.mfsa.clustering import similarity_groups
from repro.mfsa.reduce import reduce_mfsa
from repro.mfsa.serialize import dumps as mfsa_dumps, loads as mfsa_loads
from repro.mfsa.statistics import SharingProfile, describe_profile, sharing_profile

__all__ = [
    "Mfsa",
    "MTransition",
    "MergeReport",
    "MergingStructure",
    "merge_fsas",
    "merge_groups",
    "merge_ruleset",
    "ActivationConfig",
    "reference_match",
    "validate_projections",
    "stratify_ruleset",
    "similarity_groups",
    "reduce_mfsa",
    "mfsa_dumps",
    "mfsa_loads",
    "SharingProfile",
    "describe_profile",
    "sharing_profile",
]
