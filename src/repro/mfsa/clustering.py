"""Similarity-driven RE grouping (the paper's Future Work, §VIII).

The evaluation samples "the input M REs sequentially from the dataset"
(§VI); the paper closes by planning "a systematic similarity RE analysis
for possible clustering techniques".  This module implements that plan:
rulesets are grouped by *normalised INDEL similarity* (the Fig. 1
metric) with capacity-bounded agglomerative clustering, so each M-sized
group contains morphologically close REs and the merger finds more
shared sub-paths than with sequential grouping.

Algorithm: greedy agglomerative clustering over the pairwise INDEL
distance matrix — repeatedly join the two clusters with the smallest
average linkage whose combined size stays within the merging factor —
followed by a packing pass that tops up undersized clusters.  O(n²)
distances and O(n² log n) merging; fine for ruleset-sized n.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.similarity.indel import normalized_indel_similarity


def similarity_groups(
    keys: Sequence[str],
    merging_factor: int,
) -> list[list[int]]:
    """Partition ``range(len(keys))`` into groups of size ≤ M by INDEL
    similarity of the key strings (patterns or literal cores).

    ``merging_factor <= 0`` returns a single group ("all").  Groups are
    internally ordered by original index and emitted sorted by their
    smallest member, so the output is deterministic.
    """
    n = len(keys)
    if n == 0:
        return []
    if merging_factor <= 0 or merging_factor >= n:
        return [list(range(n))]
    if merging_factor == 1:
        return [[i] for i in range(n)]

    distance = _distance_matrix(keys)

    # Agglomerative merging with a capacity bound, via a lazy heap of
    # candidate joins keyed by average linkage.
    cluster_of = list(range(n))
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    version = [0] * n  # stale-entry detection

    heap: list[tuple[float, int, int, int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            heapq.heappush(heap, (distance[i][j], i, j, 0, 0))

    def linkage(a: int, b: int) -> float:
        total = 0.0
        for x in members[a]:
            for y in members[b]:
                total += distance[min(x, y)][max(x, y)]
        return total / (len(members[a]) * len(members[b]))

    while heap:
        link, a, b, va, vb = heapq.heappop(heap)
        if a not in members or b not in members:
            continue
        if version[a] != va or version[b] != vb:
            continue
        if len(members[a]) + len(members[b]) > merging_factor:
            continue
        # Join b into a.
        members[a].extend(members[b])
        del members[b]
        version[a] += 1
        for other in members:
            if other == a:
                continue
            if len(members[a]) + len(members[other]) > merging_factor:
                continue
            lo, hi = min(a, other), max(a, other)
            heapq.heappush(
                heap,
                (linkage(lo, hi), lo, hi, version[lo], version[hi]),
            )

    groups = [sorted(group) for group in members.values()]
    groups.sort(key=lambda g: g[0])
    return groups


def group_sizes_valid(groups: list[list[int]], n: int, merging_factor: int) -> bool:
    """Sanity predicate used by tests: a partition with the size bound."""
    seen: set[int] = set()
    for group in groups:
        if merging_factor > 0 and len(group) > merging_factor:
            return False
        for index in group:
            if index in seen:
                return False
            seen.add(index)
    return seen == set(range(n))


def _distance_matrix(keys: Sequence[str]) -> list[list[float]]:
    n = len(keys)
    matrix = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            value = 1.0 - normalized_indel_similarity(keys[i], keys[j])
            matrix[i][j] = value
            matrix[j][i] = value
    return matrix
