"""Compact JSON (de)serialisation of MFSAs.

The extended-ANML back-end (:mod:`repro.anml`) is the paper-faithful
interchange format; for caching compiled automata between runs a plain
JSON encoding is smaller and faster to parse.  Character classes are
encoded as hex bitmask strings; belongings as rule-id lists.

Round trips are exact and property-tested; documents carry a format
version for forward compatibility.
"""

from __future__ import annotations

import json
from typing import Any

from repro.guard.errors import FormatError
from repro.labels import CharClass
from repro.mfsa.model import Mfsa, MTransition

FORMAT = "repro-mfsa-json"
VERSION = 1


class MfsaJsonError(FormatError, ValueError):
    """Malformed or incompatible JSON document.

    A :class:`~repro.guard.errors.FormatError` in the taxonomy; keeps
    its historical :class:`ValueError` base."""

    default_stage = "mfsa-json"


def mfsa_to_dict(mfsa: Mfsa) -> dict[str, Any]:
    """Encode an MFSA as a JSON-ready dict."""
    return {
        "format": FORMAT,
        "version": VERSION,
        "num_states": mfsa.num_states,
        "initials": {str(rule): state for rule, state in mfsa.initials.items()},
        "finals": {str(rule): sorted(states) for rule, states in mfsa.finals.items()},
        "patterns": {str(rule): pattern for rule, pattern in mfsa.patterns.items()},
        "transitions": [
            [t.src, t.dst, f"{t.label.mask:x}", sorted(t.bel)] for t in mfsa.transitions
        ],
    }


def mfsa_from_dict(data: dict[str, Any]) -> Mfsa:
    """Decode the dict produced by :func:`mfsa_to_dict` (validated)."""
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise MfsaJsonError("not a repro-mfsa-json document")
    if data.get("version") != VERSION:
        raise MfsaJsonError(f"unsupported version {data.get('version')!r}")
    try:
        mfsa = Mfsa(num_states=int(data["num_states"]))
        mfsa.initials = {int(rule): int(state) for rule, state in data["initials"].items()}
        mfsa.finals = {
            int(rule): {int(s) for s in states} for rule, states in data["finals"].items()
        }
        mfsa.patterns = {int(rule): str(p) for rule, p in data.get("patterns", {}).items()}
        for src, dst, mask_hex, bel in data["transitions"]:
            mfsa.transitions.append(
                MTransition(int(src), int(dst), CharClass(int(mask_hex, 16)),
                            frozenset(int(r) for r in bel))
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise MfsaJsonError(f"malformed document: {exc}") from exc
    mfsa.validate()
    return mfsa


def dumps(mfsa: Mfsa, indent: int | None = None) -> str:
    return json.dumps(mfsa_to_dict(mfsa), indent=indent)


def loads(text: str) -> Mfsa:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise MfsaJsonError(f"invalid JSON: {exc}") from exc
    return mfsa_from_dict(data)
