"""Compact JSON (de)serialisation of MFSAs.

The extended-ANML back-end (:mod:`repro.anml`) is the paper-faithful
interchange format; for caching compiled automata between runs a plain
JSON encoding is smaller and faster to parse.  Character classes are
encoded as hex bitmask strings; belongings as rule-id lists.

Counting automata (:class:`~repro.counting.mfsa.CountingMfsa`) encode
their plain arcs in the same ``transitions`` list plus a ``counting``
list of ``[src, dst, hexmask, low, high, bel]`` entries (``high`` is
``null`` for unbounded repeats); the key's presence is what selects the
decoded type, so serve artifacts carry counter registers across process
boundaries without expansion.

Round trips are exact and property-tested; documents carry a format
version for forward compatibility.
"""

from __future__ import annotations

import json
from typing import Any

from repro.guard.errors import FormatError
from repro.labels import CharClass
from repro.mfsa.model import Mfsa, MTransition

FORMAT = "repro-mfsa-json"
VERSION = 1


class MfsaJsonError(FormatError, ValueError):
    """Malformed or incompatible JSON document.

    A :class:`~repro.guard.errors.FormatError` in the taxonomy; keeps
    its historical :class:`ValueError` base."""

    default_stage = "mfsa-json"


def mfsa_to_dict(mfsa) -> dict[str, Any]:
    """Encode an MFSA (plain or counting) as a JSON-ready dict."""
    plain = mfsa.transitions if isinstance(mfsa, Mfsa) else mfsa.plain
    data = {
        "format": FORMAT,
        "version": VERSION,
        "num_states": mfsa.num_states,
        "initials": {str(rule): state for rule, state in mfsa.initials.items()},
        "finals": {str(rule): sorted(states) for rule, states in mfsa.finals.items()},
        "patterns": {str(rule): pattern for rule, pattern in mfsa.patterns.items()},
        "transitions": [
            [t.src, t.dst, f"{t.label.mask:x}", sorted(t.bel)] for t in plain
        ],
    }
    if not isinstance(mfsa, Mfsa):
        data["counting"] = [
            [t.src, t.dst, f"{t.label.mask:x}", t.low, t.high, sorted(t.bel)]
            for t in mfsa.counting
        ]
    return data


def mfsa_from_dict(data: dict[str, Any]):
    """Decode the dict produced by :func:`mfsa_to_dict` (validated).

    Returns a plain :class:`Mfsa`, or a
    :class:`~repro.counting.mfsa.CountingMfsa` when the document carries
    a ``counting`` arc list.
    """
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise MfsaJsonError("not a repro-mfsa-json document")
    if data.get("version") != VERSION:
        raise MfsaJsonError(f"unsupported version {data.get('version')!r}")
    counting_arcs = data.get("counting")
    if counting_arcs is not None:
        # function-level import: repro.counting.mfsa depends on this package
        from repro.counting.mfsa import CMTransition, CountingMfsa

        mfsa = CountingMfsa(num_states=0)
    else:
        mfsa = Mfsa()
    try:
        mfsa.num_states = int(data["num_states"])
        mfsa.initials = {int(rule): int(state) for rule, state in data["initials"].items()}
        mfsa.finals = {
            int(rule): {int(s) for s in states} for rule, states in data["finals"].items()
        }
        mfsa.patterns = {int(rule): str(p) for rule, p in data.get("patterns", {}).items()}
        plain = mfsa.transitions if isinstance(mfsa, Mfsa) else mfsa.plain
        for src, dst, mask_hex, bel in data["transitions"]:
            plain.append(
                MTransition(int(src), int(dst), CharClass(int(mask_hex, 16)),
                            frozenset(int(r) for r in bel))
            )
        for src, dst, mask_hex, low, high, bel in counting_arcs or ():
            mfsa.counting.append(
                CMTransition(int(src), int(dst), CharClass(int(mask_hex, 16)),
                             int(low), None if high is None else int(high),
                             frozenset(int(r) for r in bel))
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise MfsaJsonError(f"malformed document: {exc}") from exc
    mfsa.validate()
    return mfsa


def dumps(mfsa, indent: int | None = None) -> str:
    return json.dumps(mfsa_to_dict(mfsa), indent=indent)


def loads(text: str):
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise MfsaJsonError(f"invalid JSON: {exc}") from exc
    return mfsa_from_dict(data)
