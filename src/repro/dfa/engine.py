"""Matching engines over DFAs and D2FAs.

A deterministic scan keeps exactly one active state, so per-byte work is
a single table lookup (DFA) or a short default-chain walk (D2FA) — the
"upper complexity limit strictly related to the time required for a
single transition traversal" of the paper's §II.  Matches are reported
as ``(rule_id, end_offset)``, identical to the NFA engines; streaming
DFAs built by :func:`repro.dfa.determinize.determinize` agree with
iNFAnt/iMFAnt match for match (tested).
"""

from __future__ import annotations

import time

from repro.dfa.d2fa import D2fa
from repro.dfa.dfa import DEAD, Dfa
from repro.engine.counters import RunResult


class DfaEngine:
    """Single-state streaming scan over a (streaming) DFA."""

    def __init__(self, dfa: Dfa) -> None:
        dfa.validate()
        self.dfa = dfa

    def run(self, data: bytes | str, collect_stats: bool = True) -> RunResult:
        payload = data.encode("latin-1") if isinstance(data, str) else data
        rows = self.dfa.rows
        accepts = self.dfa.accepts

        result = RunResult()
        started = time.perf_counter()
        state = self.dfa.initial
        matches = result.matches
        # ε-accepting rules have a final state inside the seed subset and
        # match at offset 0 (before any byte), like the NFA engines.
        for rule in accepts[state]:
            matches.add((rule, 0))
        for position, byte in enumerate(payload, start=1):
            state = rows[state][byte]
            if state == DEAD:
                state = self.dfa.initial
                continue
            hit = accepts[state]
            if hit:
                for rule in hit:
                    matches.add((rule, position))
        stats = result.stats
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.transitions_examined = len(payload)  # one lookup per byte
        stats.match_count = len(matches)
        return result


class D2faEngine:
    """Streaming scan over a default-transition-compressed DFA.

    Identical matches to :class:`DfaEngine` on the source DFA; the
    ``transitions_examined`` counter records default-chain hops, the
    compression's runtime price.
    """

    def __init__(self, d2fa: D2fa) -> None:
        self.d2fa = d2fa

    def run(self, data: bytes | str, collect_stats: bool = True) -> RunResult:
        payload = data.encode("latin-1") if isinstance(data, str) else data
        d2fa = self.d2fa
        sparse = d2fa.sparse
        default = d2fa.default
        accepts = d2fa.accepts

        result = RunResult()
        stats = result.stats
        started = time.perf_counter()
        state = d2fa.initial
        matches = result.matches
        for rule in accepts[state]:
            matches.add((rule, 0))
        for position, byte in enumerate(payload, start=1):
            cursor: int | None = state
            nxt = DEAD
            while cursor is not None:
                if collect_stats:
                    stats.transitions_examined += 1
                hit = sparse[cursor].get(byte)
                if hit is not None:
                    nxt = hit
                    break
                cursor = default[cursor]
            if nxt == DEAD:
                state = d2fa.initial
                continue
            state = nxt
            rules = accepts[state]
            if rules:
                for rule in rules:
                    matches.add((rule, position))
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.match_count = len(matches)
        return result
