"""D2FA: default-transition compression of DFAs (related work [33, 48]).

Two DFA states whose transition rows largely agree can share them: one
state keeps only the *differing* entries plus a **default transition**
to the other, which is followed for any symbol without an explicit
entry.  Kumar et al. build a maximum-weight spanning forest over the
"space reduction graph" (edge weight = number of identical row entries)
and orient each tree towards a root that keeps its full row.

This implementation follows that construction with Kruskal's algorithm
and an optional bound on the default-chain depth (long chains trade
memory for per-byte lookup time — the classic D2FA knob).  Pair
enumeration is O(n²) row comparisons; a candidate cap keeps it usable on
the post-minimisation DFAs the benchmarks build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dfa.dfa import DEAD, Dfa
from repro.labels import ALPHABET_SIZE

#: Pairs with fewer shared entries than this are not worth an edge.
MIN_SHARED_ENTRIES = 32


@dataclass
class D2fa:
    """A default-transition-compressed DFA.

    ``sparse[q]`` holds only the entries differing from the default
    chain; ``default[q]`` is the fallback state (None for roots, whose
    rows are stored in full inside ``sparse``).
    """

    num_states: int
    initial: int
    sparse: list[dict[int, int]]
    default: list[Optional[int]]
    accepts: list[frozenset[int]]

    @property
    def num_stored_transitions(self) -> int:
        """Explicit entries + one default pointer per non-root state —
        the D2FA memory-footprint metric."""
        return sum(len(row) for row in self.sparse) + sum(
            1 for d in self.default if d is not None
        )

    def lookup(self, state: int, byte: int) -> int:
        """Resolve one move, walking the default chain as needed."""
        current: Optional[int] = state
        while current is not None:
            hit = self.sparse[current].get(byte)
            if hit is not None:
                return hit
            current = self.default[current]
        return DEAD

    def max_default_depth(self) -> int:
        depths = [0] * self.num_states
        def depth(q: int) -> int:
            if self.default[q] is None:
                return 0
            if depths[q]:
                return depths[q]
            depths[q] = 1 + depth(self.default[q])
            return depths[q]
        return max((depth(q) for q in range(self.num_states)), default=0)


@dataclass
class _DisjointSet:
    parent: list[int] = field(default_factory=list)

    def make(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def compress_default_transitions(
    dfa: Dfa,
    max_depth: Optional[int] = None,
    min_shared: int = MIN_SHARED_ENTRIES,
) -> D2fa:
    """Build a D2FA from ``dfa`` (see module doc).

    ``max_depth`` bounds the default-chain length (None = unbounded);
    ``min_shared`` is the minimum row agreement for an edge to be
    considered.
    """
    import numpy as np

    n = dfa.num_states
    rows = np.asarray(dfa.rows, dtype=np.int64)
    edges: list[tuple[int, int, int]] = []  # (weight, a, b)
    for a in range(n):
        if a + 1 >= n:
            break
        # vectorised row agreement of state a against all later states
        shared = (rows[a + 1 :] == rows[a]).sum(axis=1)
        for offset in np.nonzero(shared >= min_shared)[0]:
            edges.append((int(shared[offset]), a, a + 1 + int(offset)))
    edges.sort(key=lambda e: -e[0])

    forest = _DisjointSet()
    forest.make(n)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for weight, a, b in edges:
        if forest.union(a, b):
            adjacency[a].append(b)
            adjacency[b].append(a)

    # Orient each tree from a root (the member with the most neighbours,
    # a good hub heuristic); enforce the depth bound by re-rooting
    # overflow nodes as new roots.
    default: list[Optional[int]] = [None] * n
    visited = [False] * n
    for seed in range(n):
        if visited[seed]:
            continue
        component = _collect_component(adjacency, seed)
        root = max(component, key=lambda q: len(adjacency[q]))
        stack = [(root, None, 0)]
        while stack:
            node, parent, d = stack.pop()
            if visited[node]:
                continue
            visited[node] = True
            if parent is None or (max_depth is not None and d > max_depth):
                default[node] = None
                d = 0
            else:
                default[node] = parent
            for neighbour in adjacency[node]:
                if not visited[neighbour]:
                    stack.append((neighbour, node, d + 1))

    # Materialise sparse rows: roots keep every live entry; a child keeps
    # the entries where its row differs from its default target's true
    # row (lookups that fall through then resolve correctly by induction
    # along the chain).
    sparse: list[dict[int, int]] = [dict() for _ in range(n)]
    for q in range(n):
        row = rows[q]
        if default[q] is None:
            live = np.nonzero(row != DEAD)[0]
            sparse[q] = {int(byte): int(row[byte]) for byte in live}
        else:
            differing = np.nonzero(row != rows[default[q]])[0]
            sparse[q] = {int(byte): int(row[byte]) for byte in differing}

    out = D2fa(
        num_states=n,
        initial=dfa.initial,
        sparse=sparse,
        default=default,
        accepts=list(dfa.accepts),
    )
    return out


def _collect_component(adjacency: list[list[int]], seed: int) -> list[int]:
    seen = {seed}
    stack = [seed]
    while stack:
        node = stack.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return sorted(seen)
