"""Multi-stride DFAs: consume k symbols per state traversal (§VII).

Multi-striding is the classic DFA *throughput* optimisation the paper's
related work discusses ([11, 28, 40]): a 2-stride DFA halves the number
of state traversals per byte at the price of a transition table over
symbol *pairs* — "all the k-characters combinations of adjacent
transitions", which is what makes the approach expensive.

As in practical implementations, the pair table is built over *alphabet
equivalence classes* rather than raw bytes: bytes that every transition
row treats identically share a class, so the table is
``states × classes²`` instead of ``states × 65536``.  Matches ending at
odd offsets are preserved by recording, for every pair entry, the rules
accepted at the *intermediate* state.

The engine agrees with the base DFA match for match (property-tested);
the benchmark quantifies the steps-halved vs table-squared trade-off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dfa.dfa import DEAD, Dfa
from repro.engine.counters import RunResult
from repro.labels import ALPHABET_SIZE


@dataclass
class StrideDfa:
    """A 2-stride DFA over alphabet classes (see module docstring)."""

    num_states: int
    initial: int
    #: byte -> alphabet class id
    class_of: list[int]
    num_classes: int
    #: per state: pair-index (c1 * num_classes + c2) -> destination state
    pair_rows: list[list[int]]
    #: per state: pair-index -> rules accepted at the intermediate state
    mid_accepts: list[dict[int, frozenset[int]]]
    #: per state: rules accepted on arrival (end of a 2-byte step)
    accepts: list[frozenset[int]]
    #: the base (1-stride) row per state, for the odd trailing byte
    base_rows: list[list[int]]

    @property
    def table_entries(self) -> int:
        """Stored pair-table entries — the multi-stride memory cost."""
        return self.num_states * self.num_classes * self.num_classes


def byte_classes(dfa: Dfa) -> tuple[list[int], int]:
    """Partition bytes into equivalence classes: two bytes are equivalent
    when *every* state's row sends them to the same destination."""
    signatures: dict[tuple[int, ...], int] = {}
    class_of = [0] * ALPHABET_SIZE
    for byte in range(ALPHABET_SIZE):
        signature = tuple(row[byte] for row in dfa.rows)
        class_of[byte] = signatures.setdefault(signature, len(signatures))
    return class_of, len(signatures)


def build_stride2(dfa: Dfa) -> StrideDfa:
    """Compile a (streaming) DFA into its 2-stride form."""
    dfa.validate()
    class_of, num_classes = byte_classes(dfa)
    # one representative byte per class
    representative = [0] * num_classes
    for byte in range(ALPHABET_SIZE - 1, -1, -1):
        representative[class_of[byte]] = byte

    pair_rows: list[list[int]] = []
    mid_accepts: list[dict[int, frozenset[int]]] = []
    for state in range(dfa.num_states):
        row = dfa.rows[state]
        pairs = [DEAD] * (num_classes * num_classes)
        mids: dict[int, frozenset[int]] = {}
        for c1 in range(num_classes):
            middle = row[representative[c1]]
            if middle == DEAD:
                continue
            mid_accept = dfa.accepts[middle]
            middle_row = dfa.rows[middle]
            base = c1 * num_classes
            for c2 in range(num_classes):
                dst = middle_row[representative[c2]]
                pairs[base + c2] = dst
                if mid_accept:
                    mids[base + c2] = mid_accept
        pair_rows.append(pairs)
        mid_accepts.append(mids)

    return StrideDfa(
        num_states=dfa.num_states,
        initial=dfa.initial,
        class_of=class_of,
        num_classes=num_classes,
        pair_rows=pair_rows,
        mid_accepts=mid_accepts,
        accepts=list(dfa.accepts),
        base_rows=[list(row) for row in dfa.rows],
    )


class StrideDfaEngine:
    """Streaming scan consuming two bytes per traversal."""

    def __init__(self, stride: StrideDfa) -> None:
        self.stride = stride

    def run(self, data: bytes | str, collect_stats: bool = True) -> RunResult:
        payload = data.encode("latin-1") if isinstance(data, str) else data
        stride = self.stride
        class_of = stride.class_of
        num_classes = stride.num_classes
        pair_rows = stride.pair_rows
        mid_accepts = stride.mid_accepts
        accepts = stride.accepts

        result = RunResult()
        matches = result.matches
        for rule in accepts[stride.initial]:
            matches.add((rule, 0))

        started = time.perf_counter()
        state = stride.initial
        position = 0
        steps = 0
        limit = len(payload) - 1
        while position < limit:
            pair = class_of[payload[position]] * num_classes + class_of[payload[position + 1]]
            steps += 1
            mid = mid_accepts[state].get(pair)
            if mid:
                for rule in mid:
                    matches.add((rule, position + 1))
            state = pair_rows[state][pair]
            position += 2
            if state == DEAD:
                state = stride.initial
                continue
            hit = accepts[state]
            if hit:
                for rule in hit:
                    matches.add((rule, position))
        if position < len(payload):  # odd trailing byte: one base step
            steps += 1
            state = stride.base_rows[state][payload[position]]
            position += 1
            if state == DEAD:
                state = stride.initial
            else:
                for rule in accepts[state]:
                    matches.add((rule, position))

        stats = result.stats
        stats.wall_seconds = time.perf_counter() - started
        stats.chars_processed = len(payload)
        stats.transitions_examined = steps
        stats.match_count = len(matches)
        return result
