"""The DFA model with per-rule accept sets.

States are dense integers; the transition function is total over the
256-symbol alphabet (a missing entry means the dead state, encoded as
-1).  ``accepts[q]`` is the frozen set of rule identifiers matched upon
*reaching* ``q`` — the multi-RE union DFA the classic pipelines build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guard.errors import BudgetExceeded
from repro.labels import ALPHABET_SIZE

DEAD = -1


class DfaExplosionError(BudgetExceeded, RuntimeError):
    """Raised when subset construction exceeds its state budget — the
    state-explosion phenomenon the paper's §II discusses.

    A :class:`~repro.guard.errors.BudgetExceeded` in the taxonomy (exit
    code 4); keeps its historical :class:`RuntimeError` base."""

    default_stage = "determinize"

    def __init__(self, budget: int) -> None:
        super().__init__(
            f"subset construction exceeded {budget} states",
            resource="states",
            limit=budget,
        )
        self.budget = budget


@dataclass
class Dfa:
    """A deterministic automaton over bytes (see module docstring)."""

    num_states: int = 0
    initial: int = 0
    #: per state: 256-entry transition row (DEAD = no move)
    rows: list[list[int]] = field(default_factory=list)
    #: per state: rule ids accepted on arrival
    accepts: list[frozenset[int]] = field(default_factory=list)

    def add_state(self, accept: frozenset[int] = frozenset()) -> int:
        state = self.num_states
        self.num_states += 1
        self.rows.append([DEAD] * ALPHABET_SIZE)
        self.accepts.append(accept)
        return state

    @property
    def num_transitions(self) -> int:
        """Live (non-dead) transition count — the memory-footprint metric
        default-transition compression tries to reduce."""
        return sum(1 for row in self.rows for dst in row if dst != DEAD)

    def step(self, state: int, byte: int) -> int:
        return self.rows[state][byte]

    def validate(self) -> None:
        if not 0 <= self.initial < self.num_states:
            raise ValueError("initial state out of range")
        if len(self.rows) != self.num_states or len(self.accepts) != self.num_states:
            raise ValueError("rows/accepts length mismatch")
        for state, row in enumerate(self.rows):
            if len(row) != ALPHABET_SIZE:
                raise ValueError(f"state {state} row has {len(row)} entries")
            for dst in row:
                if dst != DEAD and not 0 <= dst < self.num_states:
                    raise ValueError(f"state {state} has out-of-range target {dst}")

    def rule_ids(self) -> frozenset[int]:
        out: set[int] = set()
        for accept in self.accepts:
            out |= accept
        return frozenset(out)

    def __repr__(self) -> str:
        return (
            f"Dfa(states={self.num_states}, transitions={self.num_transitions}, "
            f"rules={len(self.rule_ids())})"
        )
