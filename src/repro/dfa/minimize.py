"""DFA minimisation (Moore partition refinement, per-rule accepts).

Classic minimisation adapted to multi-rule DFAs: the initial partition
groups states by their *accept set* (two states accepting different rule
sets are never equivalent), then blocks are refined until every block's
states agree on the block of every symbol successor.  The refinement
rounds are vectorised with NumPy: one round maps every transition row
through the current block assignment and re-blocks states by
``numpy.unique`` over the mapped rows, so a round costs O(n·Σ) array
work instead of Python-level loops.

The dead state (-1) is treated as its own implicit block.
"""

from __future__ import annotations

import numpy as np

from repro.dfa.dfa import DEAD, Dfa
from repro.labels import ALPHABET_SIZE


def minimize(dfa: Dfa) -> Dfa:
    """Return the minimal DFA equivalent to ``dfa`` (per-rule accepts)."""
    reachable = _reachable(dfa)
    order = sorted(reachable)
    index_of = {state: i for i, state in enumerate(order)}
    n = len(order)

    # Dense transition matrix over reachable states; DEAD stays -1.
    rows = np.full((n, ALPHABET_SIZE), DEAD, dtype=np.int64)
    for i, state in enumerate(order):
        row = dfa.rows[state]
        for byte in range(ALPHABET_SIZE):
            dst = row[byte]
            rows[i, byte] = index_of[dst] if dst != DEAD else DEAD

    # Initial partition: by accept set.
    interned: dict[frozenset[int], int] = {}
    initial_blocks = np.empty(n, dtype=np.int64)
    for i, state in enumerate(order):
        accept = dfa.accepts[state]
        if accept not in interned:
            interned[accept] = len(interned)
        initial_blocks[i] = interned[accept]

    blocks = initial_blocks
    num_blocks = len(interned)
    while True:
        # Map successors through the current blocks (-1 for DEAD) and
        # re-block by (own block, successor-block row).
        mapped = np.where(rows == DEAD, np.int64(-1), blocks[rows])
        signature = np.concatenate([blocks[:, None], mapped], axis=1)
        _, new_blocks = np.unique(signature, axis=0, return_inverse=True)
        new_count = int(new_blocks.max()) + 1 if n else 0
        if new_count == num_blocks:
            break
        blocks = new_blocks.astype(np.int64)
        num_blocks = new_count

    # Rebuild: one state per block, representative = smallest member.
    representatives: dict[int, int] = {}
    for i in range(n):
        block = int(blocks[i])
        if block not in representatives or i < representatives[block]:
            representatives[block] = i
    block_order = sorted(representatives, key=lambda b: representatives[b])
    new_id = {block: i for i, block in enumerate(block_order)}

    out = Dfa()
    for block in block_order:
        out.add_state(dfa.accepts[order[representatives[block]]])
    out.initial = new_id[int(blocks[index_of[dfa.initial]])]
    for block in block_order:
        source_row = rows[representatives[block]]
        new_row = out.rows[new_id[block]]
        for byte in range(ALPHABET_SIZE):
            dst = int(source_row[byte])
            if dst != DEAD:
                new_row[byte] = new_id[int(blocks[dst])]
    out.validate()
    return out


def _reachable(dfa: Dfa) -> set[int]:
    seen = {dfa.initial}
    stack = [dfa.initial]
    while stack:
        state = stack.pop()
        for dst in dfa.rows[state]:
            if dst != DEAD and dst not in seen:
                seen.add(dst)
                stack.append(dst)
    return seen
