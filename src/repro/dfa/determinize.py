"""Subset construction: a set of ε-free NFAs → one multi-RE DFA.

The union automaton of all rules is determinised in one pass.  With
``streaming=True`` (default) every rule's initial state is re-seeded
into each subset, which makes the DFA scan for matches at every offset —
exactly the match-anywhere semantics of the iNFAnt/iMFAnt engines, so
the engines can be cross-checked transition for transition.

Per-symbol successor computation works on *alphabet blocks*: the labels
leaving the current subset partition the alphabet, and each block is
processed once instead of 256 times.

A ``max_states`` budget turns the exponential blow-up into a
:class:`repro.dfa.dfa.DfaExplosionError` — the benchmarks surface the
explosion on dot-star-heavy rulesets rather than hanging on it.
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.fsa import Fsa
from repro.dfa.dfa import Dfa, DfaExplosionError
from repro.mfsa.ccpartial import alphabet_partition

DEFAULT_MAX_STATES = 200_000


def determinize(
    rules: Sequence[tuple[int, Fsa]],
    streaming: bool = True,
    max_states: int = DEFAULT_MAX_STATES,
    meter=None,
) -> Dfa:
    """Build the multi-rule DFA for ``(rule_id, ε-free NFA)`` pairs.

    ``meter`` is an optional :class:`~repro.guard.budget.BudgetMeter`;
    its ``max_states`` (when tighter) lowers the explosion budget and
    its deadline is checked once per popped subset."""
    from repro.guard.errors import UsageError

    if not rules:
        raise UsageError("cannot determinise an empty ruleset")
    for _, fsa in rules:
        if fsa.has_epsilon():
            raise UsageError("determinize requires ε-free NFAs")
    if meter is not None and meter.budget.max_states is not None:
        max_states = min(max_states, meter.budget.max_states)

    # Flatten the union NFA: globally renumber each rule's states.
    offsets: list[int] = []
    total = 0
    for _, fsa in rules:
        offsets.append(total)
        total += fsa.num_states

    arcs_from: list[list[tuple[int, int]]] = [[] for _ in range(total)]  # (mask, dst)
    accept_rules: list[frozenset[int]] = [frozenset()] * total
    seeds: list[int] = []
    for (rule_id, fsa), offset in zip(rules, offsets):
        seeds.append(fsa.initial + offset)
        for t in fsa.labelled_transitions():
            arcs_from[t.src + offset].append((t.label.mask, t.dst + offset))  # type: ignore[union-attr]
        for final in fsa.finals:
            accept_rules[final + offset] = frozenset({rule_id})

    seed_set = frozenset(seeds)

    def accepts_of(subset: frozenset[int]) -> frozenset[int]:
        out: set[int] = set()
        for state in subset:
            out |= accept_rules[state]
        return frozenset(out)

    dfa = Dfa()
    start = seed_set
    subset_ids: dict[frozenset[int], int] = {start: dfa.add_state(accepts_of(start))}
    dfa.initial = 0
    worklist = [start]
    while worklist:
        subset = worklist.pop()
        src_id = subset_ids[subset]
        if meter is not None:
            meter.check_deadline(stage="determinize")
        # Partition the alphabet by the labels leaving this subset.
        masks = sorted({mask for state in subset for mask, _ in arcs_from[state]})
        if not masks:
            continue
        for block in alphabet_partition(masks):
            targets: set[int] = set()
            for state in subset:
                for mask, dst in arcs_from[state]:
                    if mask & block:
                        targets.add(dst)
            if not targets:
                continue
            successor = frozenset(targets) | seed_set if streaming else frozenset(targets)
            dst_id = subset_ids.get(successor)
            if dst_id is None:
                if len(subset_ids) >= max_states:
                    raise DfaExplosionError(max_states)
                dst_id = dfa.add_state(accepts_of(successor))
                subset_ids[successor] = dst_id
                worklist.append(successor)
            row = dfa.rows[src_id]
            remaining = block
            while remaining:
                low = remaining & -remaining
                row[low.bit_length() - 1] = dst_id
                remaining ^= low
    if streaming:
        # Symbols enabling no arc from the current subset fall back to the
        # seed subset (restart), not the dead state.
        fallback = subset_ids[start]
        for row in dfa.rows:
            for byte in range(len(row)):
                if row[byte] == -1:
                    row[byte] = fallback
    dfa.validate()
    return dfa
