"""DFA substrate: determinisation, minimisation, D2FA compression.

The paper's background (§II) contrasts the MFSA/NFA approach with the
classic DFA pipeline: subset construction (with its state-explosion
risk), minimisation, and default-transition compression (D2FA-family,
related work [33, 39, 48]).  This package implements that pipeline so
the benchmarks can compare MFSA merging against the DFA alternatives on
the same rulesets:

* :mod:`repro.dfa.dfa` — the DFA model with per-rule accept sets;
* :mod:`repro.dfa.determinize` — subset construction over optimised
  NFAs, streaming (match-anywhere) or anchored, with a state cap that
  surfaces the explosion instead of hanging;
* :mod:`repro.dfa.minimize` — Moore/Hopcroft-style minimisation
  respecting per-rule accept partitions;
* :mod:`repro.dfa.d2fa` — default-transition compression (maximum-weight
  spanning forest over transition-sharing weights);
* :mod:`repro.dfa.multistride` — 2-stride DFAs over alphabet classes
  (the related-work throughput optimisation, [11, 28, 40]);
* :mod:`repro.dfa.engine` — matching engines for DFAs and D2FAs.
"""

from repro.dfa.dfa import Dfa, DfaExplosionError
from repro.dfa.determinize import determinize
from repro.dfa.minimize import minimize
from repro.dfa.d2fa import D2fa, compress_default_transitions
from repro.dfa.engine import D2faEngine, DfaEngine
from repro.dfa.multistride import StrideDfa, StrideDfaEngine, build_stride2

__all__ = [
    "Dfa",
    "DfaExplosionError",
    "determinize",
    "minimize",
    "D2fa",
    "compress_default_transitions",
    "D2faEngine",
    "DfaEngine",
    "StrideDfa",
    "StrideDfaEngine",
    "build_stride2",
]
