"""Case-insensitive matching support (the DPI ``nocase`` option).

Snort/Suricata rules routinely match case-insensitively; automata
engines implement this at *compile* time by widening every literal's
character class with its ASCII case counterpart — `[aA]` behaviour
without runtime folding, so engine hot loops are untouched.

``fold_case`` is an AST→AST rewrite applied before construction
(`OptimizeOptions.case_insensitive=True` threads it through the
pipeline); matches agree with ``re.IGNORECASE`` on the ASCII subset
(property-tested).
"""

from __future__ import annotations

from repro.frontend.ast import AstNode, Literal, map_ast
from repro.labels import CharClass

_UPPER_LO, _UPPER_HI = 0x41, 0x5A
_LOWER_LO, _LOWER_HI = 0x61, 0x7A
_CASE_DELTA = 0x20


def fold_charclass(charclass: CharClass) -> CharClass:
    """Widen a class with the ASCII case counterparts of its members."""
    mask = charclass.mask
    upper_members = mask & (((1 << (_UPPER_HI + 1)) - 1) & ~((1 << _UPPER_LO) - 1))
    lower_members = mask & (((1 << (_LOWER_HI + 1)) - 1) & ~((1 << _LOWER_LO) - 1))
    return CharClass(mask | (upper_members << _CASE_DELTA) | (lower_members >> _CASE_DELTA))


def fold_case(node: AstNode) -> AstNode:
    """Rewrite every literal to match both cases (see module docstring)."""

    def rewrite(n: AstNode) -> AstNode:
        if isinstance(n, Literal):
            folded = fold_charclass(n.charclass)
            if folded != n.charclass:
                return Literal(folded)
        return n

    return map_ast(node, rewrite)
