"""Static analysis over regex ASTs: match widths and required literals.

Supports the Hyperscan-style decomposition baseline
(:mod:`repro.decompose`, paper related work [6]): a rule whose matches
*must* contain one of a small set of literal strings can be guarded by
an exact-string prefilter, and a rule with a finite maximum match width
can be confirmed on a bounded window around each literal hit.

All analyses are conservative: ``None`` / unbounded results mean "no
useful fact", never a wrong one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend.ast import Alternation, AstNode, Concat, Empty, Literal, Repeat

#: Caps keeping the exact-set expansion tractable.
MAX_EXACT_STRINGS = 64
MAX_EXACT_LENGTH = 64
#: Character classes wider than this are not expanded into literals.
MAX_CLASS_WIDTH = 4


def min_width(node: AstNode) -> int:
    """Minimum number of symbols any match consumes."""
    if isinstance(node, Empty):
        return 0
    if isinstance(node, Literal):
        return 1
    if isinstance(node, Concat):
        return sum(min_width(part) for part in node.parts)
    if isinstance(node, Alternation):
        return min(min_width(branch) for branch in node.branches)
    if isinstance(node, Repeat):
        return node.low * min_width(node.body)
    raise TypeError(f"unknown AST node: {node!r}")


def max_width(node: AstNode) -> Optional[int]:
    """Maximum number of symbols any match consumes; None = unbounded."""
    if isinstance(node, Empty):
        return 0
    if isinstance(node, Literal):
        return 1
    if isinstance(node, Concat):
        total = 0
        for part in node.parts:
            width = max_width(part)
            if width is None:
                return None
            total += width
        return total
    if isinstance(node, Alternation):
        widths = [max_width(branch) for branch in node.branches]
        if any(w is None for w in widths):
            return None
        return max(widths)  # type: ignore[arg-type]
    if isinstance(node, Repeat):
        if node.high is None:
            return None if max_width(node.body) != 0 else 0
        body = max_width(node.body)
        return None if body is None else node.high * body
    raise TypeError(f"unknown AST node: {node!r}")


def exact_strings(node: AstNode) -> Optional[frozenset[str]]:
    """The full language as a finite string set, or None when infinite /
    too large (bounded by MAX_EXACT_STRINGS × MAX_EXACT_LENGTH)."""
    if isinstance(node, Empty):
        return frozenset({""})
    if isinstance(node, Literal):
        if len(node.charclass) > MAX_CLASS_WIDTH:
            return None
        return frozenset(chr(b) for b in node.charclass.chars())
    if isinstance(node, Concat):
        result = frozenset({""})
        for part in node.parts:
            tails = exact_strings(part)
            if tails is None:
                return None
            result = frozenset(a + b for a in result for b in tails)
            if len(result) > MAX_EXACT_STRINGS or any(len(s) > MAX_EXACT_LENGTH for s in result):
                return None
        return result
    if isinstance(node, Alternation):
        result: set[str] = set()
        for branch in node.branches:
            strings = exact_strings(branch)
            if strings is None:
                return None
            result |= strings
            if len(result) > MAX_EXACT_STRINGS:
                return None
        return frozenset(result)
    if isinstance(node, Repeat):
        if node.high is None:
            return None
        result: set[str] = set()
        body = exact_strings(node.body)
        if body is None:
            return None
        for count in range(node.low, node.high + 1):
            layer = frozenset({""})
            for _ in range(count):
                layer = frozenset(a + b for a in layer for b in body)
                if len(layer) > MAX_EXACT_STRINGS:
                    return None
            result |= layer
            if len(result) > MAX_EXACT_STRINGS or any(len(s) > MAX_EXACT_LENGTH for s in result):
                return None
        return frozenset(result)
    raise TypeError(f"unknown AST node: {node!r}")


@dataclass(frozen=True)
class RequiredLiterals:
    """A *required factor set*: every match contains at least one member
    as a contiguous substring.  Smaller sets with longer members make
    better prefilters; ``quality()`` scores that."""

    literals: frozenset[str]

    def quality(self) -> float:
        if not self.literals:
            return 0.0
        shortest = min(len(s) for s in self.literals)
        return shortest / (1.0 + 0.1 * len(self.literals))


def required_literals(node: AstNode) -> Optional[RequiredLiterals]:
    """A required factor set for the node's language, or None.

    Soundness invariant (property-tested): every string matching the RE
    contains some member of the returned set as a substring.
    """
    candidates = _candidate_sets(node)
    if not candidates:
        return None
    best = max(candidates, key=lambda c: c.quality())
    if best.quality() <= 0 or any(not s for s in best.literals):
        return None
    return best


def _bounded_cross(heads: frozenset[str], tails: frozenset[str]) -> frozenset[str] | None:
    """Concatenation cross-product, or None when it exceeds the caps."""
    if len(heads) * len(tails) > MAX_EXACT_STRINGS:
        return None
    combined = frozenset(a + b for a in heads for b in tails)
    if any(len(s) > MAX_EXACT_LENGTH for s in combined):
        return None
    return combined


def _candidate_sets(node: AstNode) -> list[RequiredLiterals]:
    """All discovered required factor sets for the node (possibly empty)."""
    if isinstance(node, Concat):
        return _concat_candidates(node)

    exact = exact_strings(node)
    if exact is not None and exact and all(exact):
        return [RequiredLiterals(frozenset(exact))]

    if isinstance(node, Alternation):
        # A factor set exists only when every branch provides one; the
        # union then covers every match.
        per_branch: list[RequiredLiterals] = []
        for branch in node.branches:
            sets = _candidate_sets(branch)
            if not sets:
                return []
            per_branch.append(max(sets, key=lambda c: c.quality()))
        merged = frozenset().union(*(c.literals for c in per_branch))
        if len(merged) > MAX_EXACT_STRINGS:
            return []
        return [RequiredLiterals(merged)]
    if isinstance(node, Repeat):
        if node.low >= 1:
            # The body occurs at least once, so its factors are required.
            return _candidate_sets(node.body)
        return []
    if isinstance(node, Literal):
        if len(node.charclass) <= MAX_CLASS_WIDTH:
            return [RequiredLiterals(frozenset(chr(b) for b in node.charclass.chars()))]
        return []
    return []


def _concat_candidates(node: Concat) -> list[RequiredLiterals]:
    """Factor sets for a concatenation.

    Every part is mandatory, so each part's factor sets carry over; in
    addition, maximal runs of exactly-expandable adjacent parts combine
    into longer (higher-quality) factors — in ``foo.*barbar`` the runs
    yield ``foo`` and ``barbar``, not single letters.  Parts that can
    match the empty string (optional content) terminate a run instead of
    diluting its factors.
    """
    out: list[RequiredLiterals] = []
    run: frozenset[str] | None = None

    def flush(current: frozenset[str] | None) -> None:
        if current and all(current):
            out.append(RequiredLiterals(current))

    for part in node.parts:
        exact = exact_strings(part)
        if exact is not None and "" not in exact:
            combined = _bounded_cross(run if run is not None else frozenset({""}), exact)
            if combined is not None:
                run = combined
                continue
            # over budget: keep the finished run, restart from this part
            flush(run)
            run = exact
            continue
        flush(run)
        run = None
        if exact is None:
            out.extend(_candidate_sets(part))
        # optional exact parts ("" in exact) contribute nothing required
    flush(run)
    return out
