"""Diagnostics for the regular-expression front-end."""

from __future__ import annotations

from repro.guard.errors import CompileError


class RegexSyntaxError(CompileError, ValueError):
    """A lexical or syntactic error in an input regular expression.

    Carries the offending pattern and the character offset so callers can
    render a caret diagnostic.  Part of the :class:`~repro.guard.errors.
    ReproError` taxonomy (a :class:`CompileError`); keeps its historical
    :class:`ValueError` base for older call sites.
    """

    default_stage = "frontend"

    def __init__(self, message: str, pattern: str, position: int) -> None:
        self.message = message
        self.pattern = pattern
        self.position = position
        super().__init__(self._render())

    def _render(self) -> str:
        caret = " " * self.position + "^"
        return f"{self.message} at offset {self.position}\n  {self.pattern}\n  {caret}"
