"""Typed abstract syntax tree for POSIX extended regular expressions.

The parser produces these nodes; the mid-end consumes them, first through
the loop-expansion rewrite (:mod:`repro.automata.loops`) and then through
Thompson construction (:mod:`repro.automata.thompson`).

Only the *regular* core of POSIX ERE is modelled (the paper does the same;
backreferences are explicitly future work).  Anchors are not part of the
paper's streaming-match model and are rejected by the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.labels import CharClass

#: Marker for an unbounded repetition upper bound (``*``, ``+``, ``{m,}``).
UNBOUNDED: Optional[int] = None


class AstNode:
    """Base class for regex AST nodes."""

    __slots__ = ()

    def children(self) -> tuple["AstNode", ...]:
        return ()

    def walk(self) -> Iterator["AstNode"]:
        """Depth-first pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def pattern(self) -> str:
        """Render the subtree back to an ERE string (parenthesised safely)."""
        raise NotImplementedError

    # Nodes are compared structurally; used heavily in tests.
    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self):
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class Empty(AstNode):
    """The empty string (epsilon), e.g. one branch of ``(a|)``."""

    def pattern(self) -> str:
        return ""

    def _key(self):
        return ()


@dataclass(frozen=True, eq=False)
class Literal(AstNode):
    """One input symbol drawn from a character class.

    Plain characters are singleton classes; bracket expressions and ``.``
    are wider classes.
    """

    charclass: CharClass

    def pattern(self) -> str:
        return self.charclass.pattern()

    def _key(self):
        return (self.charclass.mask,)


@dataclass(frozen=True, eq=False)
class Concat(AstNode):
    """Concatenation of two or more sub-expressions."""

    parts: tuple[AstNode, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Concat requires at least two parts")

    def children(self) -> tuple[AstNode, ...]:
        return self.parts

    def pattern(self) -> str:
        rendered = []
        for part in self.parts:
            text = part.pattern()
            if isinstance(part, Alternation):
                text = f"({text})"
            rendered.append(text)
        return "".join(rendered)

    def _key(self):
        return self.parts


@dataclass(frozen=True, eq=False)
class Alternation(AstNode):
    """Alternation between two or more branches: ``a|b|c``."""

    branches: tuple[AstNode, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError("Alternation requires at least two branches")

    def children(self) -> tuple[AstNode, ...]:
        return self.branches

    def pattern(self) -> str:
        return "|".join(branch.pattern() for branch in self.branches)

    def _key(self):
        return self.branches


@dataclass(frozen=True, eq=False)
class Repeat(AstNode):
    """Quantified sub-expression: ``x*``, ``x+``, ``x?``, ``x{m,n}``.

    ``high`` is :data:`UNBOUNDED` (``None``) for ``*``, ``+`` and ``{m,}``.
    The paper's loop-expansion pass (§IV-C) rewrites bounded repeats into
    explicit concatenations before merging; see
    :func:`repro.automata.loops.expand_loops`.
    """

    body: AstNode
    low: int
    high: Optional[int]

    def __post_init__(self) -> None:
        if self.low < 0:
            raise ValueError("repeat lower bound must be >= 0")
        if self.high is not None and self.high < self.low:
            raise ValueError("repeat upper bound below lower bound")

    def children(self) -> tuple[AstNode, ...]:
        return (self.body,)

    def quantifier(self) -> str:
        if (self.low, self.high) == (0, UNBOUNDED):
            return "*"
        if (self.low, self.high) == (1, UNBOUNDED):
            return "+"
        if (self.low, self.high) == (0, 1):
            return "?"
        if self.high == self.low:
            return f"{{{self.low}}}"
        if self.high is UNBOUNDED:
            return f"{{{self.low},}}"
        return f"{{{self.low},{self.high}}}"

    def pattern(self) -> str:
        text = self.body.pattern()
        if not isinstance(self.body, Literal):
            text = f"({text})"
        return text + self.quantifier()

    def _key(self):
        return (self.body, self.low, self.high)


def map_ast(node: AstNode, fn: Callable[[AstNode], AstNode]) -> AstNode:
    """Bottom-up structural rewrite: apply ``fn`` to every node.

    Children are rewritten first, then ``fn`` is applied to the rebuilt
    node.  Used by normalisation passes such as loop expansion.
    """
    if isinstance(node, Concat):
        node = concat([map_ast(p, fn) for p in node.parts])
    elif isinstance(node, Alternation):
        node = alternation([map_ast(b, fn) for b in node.branches])
    elif isinstance(node, Repeat):
        node = Repeat(map_ast(node.body, fn), node.low, node.high)
    return fn(node)


def concat(parts: list[AstNode]) -> AstNode:
    """Smart concatenation: flattens nesting and drops epsilons."""
    flat: list[AstNode] = []
    for part in parts:
        if isinstance(part, Empty):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alternation(branches: list[AstNode]) -> AstNode:
    """Smart alternation: flattens nested alternations, keeps duplicates."""
    flat: list[AstNode] = []
    for branch in branches:
        if isinstance(branch, Alternation):
            flat.extend(branch.branches)
        else:
            flat.append(branch)
    if len(flat) == 1:
        return flat[0]
    return Alternation(tuple(flat))


def count_literals(node: AstNode) -> int:
    """Number of Literal leaves; a rough size proxy used by dataset stats."""
    return sum(1 for n in node.walk() if isinstance(n, Literal))
