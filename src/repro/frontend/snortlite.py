"""Snort-lite rule ingestion: IDS-style rules → compile-ready patterns.

DPI rulesets rarely arrive as bare EREs; Snort/Suricata rules wrap them
in an action header and an option list.  This module parses the subset
that matters for pattern matching, so real-world-shaped rule files feed
the pipeline directly::

    alert tcp any any -> any 80 (msg:"SQLi probe"; \
        content:"union select"; nocase; sid:1001;)
    alert tcp any any -> any any (pcre:"/etc\\/(passwd|shadow)/"; sid:1002;)

Supported options:

* ``content:"..."`` — literal bytes; ``|41 42|`` hex escapes; multiple
  contents AND-combine in order (joined with ``.*``);
* ``pcre:"/.../"`` — the inner pattern is taken as our ERE subset
  (flags: only ``i`` is honoured);
* ``nocase`` — case-insensitive matching for the preceding content;
* ``msg:"..."``, ``sid:N`` — carried as metadata.

Anything else in the option list is ignored (recorded in
``SnortRule.ignored_options``), and malformed rules raise
:class:`SnortParseError` with the line number.
"""

from __future__ import annotations

import re as _stdlib_re
from dataclasses import dataclass, field
from typing import Optional

from repro.guard.errors import CompileError

_ERE_SPECIAL = set(".^$*+?()[]{}|\\")


class SnortParseError(CompileError, ValueError):
    """A malformed snort-lite rule; carries the 1-based line number.

    A :class:`~repro.guard.errors.CompileError` in the taxonomy; keeps
    its historical :class:`ValueError` base."""

    default_stage = "frontend"

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class SnortRule:
    """One parsed rule, ready for the compilation pipeline."""

    action: str
    header: str
    pattern: str
    msg: Optional[str] = None
    sid: Optional[int] = None
    nocase: bool = False
    ignored_options: list[str] = field(default_factory=list)
    line: int = 0


_HEADER = _stdlib_re.compile(
    r"^(alert|log|pass|drop|reject)\s+(\S+\s+\S+\s+\S+\s+->\s+\S+\s+\S+)\s*\((.*)\)\s*$"
)


def parse_rules(text: str) -> list[SnortRule]:
    """Parse a snort-lite rule file (one rule per line, ``\\`` continuations,
    ``#`` comments)."""
    rules: list[SnortRule] = []
    pending = ""
    pending_start = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if not pending:
            pending_start = number
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        rules.append(_parse_rule(pending, pending_start))
        pending = ""
    if pending:
        raise SnortParseError("unterminated continuation", pending_start)
    return rules


def _parse_rule(line: str, number: int) -> SnortRule:
    match = _HEADER.match(line)
    if not match:
        raise SnortParseError("malformed rule header", number)
    action, header, body = match.groups()

    contents: list[tuple[str, bool]] = []  # (escaped ERE fragment, nocase)
    pcre: Optional[str] = None
    pcre_nocase = False
    msg: Optional[str] = None
    sid: Optional[int] = None
    ignored: list[str] = []

    for option in _split_options(body, number):
        key, _, value = option.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "content":
            contents.append((_content_to_ere(_unquote(value, number), number), False))
        elif key == "nocase":
            if not contents:
                raise SnortParseError("nocase before any content", number)
            fragment, _ = contents[-1]
            contents[-1] = (fragment, True)
        elif key == "pcre":
            pcre, pcre_nocase = _parse_pcre(_unquote(value, number), number)
        elif key == "msg":
            msg = _unquote(value, number)
        elif key == "sid":
            try:
                sid = int(value)
            except ValueError:
                raise SnortParseError(f"bad sid {value!r}", number) from None
        else:
            ignored.append(key)

    pattern, nocase = _combine(contents, pcre, pcre_nocase, number)
    return SnortRule(
        action=action,
        header=header.strip(),
        pattern=pattern,
        msg=msg,
        sid=sid,
        nocase=nocase,
        ignored_options=ignored,
        line=number,
    )


def _split_options(body: str, number: int) -> list[str]:
    """Split on ';' outside quoted strings."""
    options: list[str] = []
    current = ""
    in_quotes = False
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == '"' and (i == 0 or body[i - 1] != "\\"):
            in_quotes = not in_quotes
        if ch == ";" and not in_quotes:
            if current.strip():
                options.append(current.strip())
            current = ""
        else:
            current += ch
        i += 1
    if in_quotes:
        raise SnortParseError("unterminated quoted string", number)
    if current.strip():
        options.append(current.strip())
    return options


def _unquote(value: str, number: int) -> str:
    if len(value) < 2 or not (value.startswith('"') and value.endswith('"')):
        raise SnortParseError(f"expected quoted value, got {value!r}", number)
    return value[1:-1].replace('\\"', '"')


def _content_to_ere(content: str, number: int) -> str:
    """Literal content (with |hex| blocks) → an escaped ERE fragment."""
    out: list[str] = []
    i = 0
    while i < len(content):
        ch = content[i]
        if ch == "|":
            end = content.find("|", i + 1)
            if end == -1:
                raise SnortParseError("unterminated |hex| block", number)
            for token in content[i + 1 : end].split():
                try:
                    byte = int(token, 16)
                except ValueError:
                    raise SnortParseError(f"bad hex byte {token!r}", number) from None
                out.append(f"\\x{byte:02x}")
            i = end + 1
            continue
        out.append("\\" + ch if ch in _ERE_SPECIAL else ch)
        i += 1
    if not out:
        raise SnortParseError("empty content", number)
    return "".join(out)


def _parse_pcre(value: str, number: int) -> tuple[str, bool]:
    if not value.startswith("/"):
        raise SnortParseError("pcre value must start with '/'", number)
    end = value.rfind("/")
    if end == 0:
        raise SnortParseError("unterminated pcre pattern", number)
    flags = value[end + 1 :]
    unsupported = set(flags) - {"i", "s"}
    if unsupported:
        raise SnortParseError(f"unsupported pcre flags {''.join(sorted(unsupported))!r}", number)
    return value[1:end], "i" in flags


def _combine(
    contents: list[tuple[str, bool]],
    pcre: Optional[str],
    pcre_nocase: bool,
    number: int,
) -> tuple[str, bool]:
    """AND-combine contents (ordered, gap-tolerant) and the pcre pattern."""
    parts = [fragment for fragment, _ in contents]
    if pcre is not None:
        parts.append(pcre)
    if not parts:
        raise SnortParseError("rule has neither content nor pcre", number)
    nocase_flags = [flag for _, flag in contents] + ([pcre_nocase] if pcre is not None else [])
    # A rule is compiled case-insensitively when every matching option is.
    nocase = all(nocase_flags) and bool(nocase_flags)
    return ".*".join(parts), nocase


def compile_snort_rules(text: str):
    """Parse rules and compile them into per-rule FSAs.

    Returns ``(rules, fsas)`` where ``fsas[i]`` matches ``rules[i]``
    (case folding applied per rule's nocase flag).  Mixed-case rulesets
    compile per rule rather than globally.
    """
    from repro.automata.optimize import OptimizeOptions, compile_re_to_fsa

    rules = parse_rules(text)
    fsas = []
    for rule in rules:
        options = OptimizeOptions(case_insensitive=rule.nocase)
        fsas.append(compile_re_to_fsa(rule.pattern, options))
    return rules, fsas


class SnortRulesetEngine:
    """Turn-key matcher for a snort-lite rule file.

    Rules split by their nocase flag (case folding is a compile-time
    property), each group merges into MFSAs at the given merging factor,
    and ``scan`` reports alerts as ``(SnortRule, end_offset)`` pairs —
    the library form of what a hand-rolled IDS loop would do.
    """

    def __init__(self, text: str, merging_factor: int = 0) -> None:
        from repro.automata.optimize import OptimizeOptions
        from repro.engine.imfant import IMfantEngine
        from repro.pipeline.compiler import CompileOptions, compile_ruleset

        self.rules = parse_rules(text)
        self._groups: list[tuple[list[SnortRule], list[IMfantEngine]]] = []
        for flag in (False, True):
            members = [r for r in self.rules if r.nocase is flag]
            if not members:
                continue
            compiled = compile_ruleset(
                [r.pattern for r in members],
                CompileOptions(
                    merging_factor=merging_factor,
                    emit_anml=False,
                    optimize=OptimizeOptions(case_insensitive=flag),
                ),
            )
            engines = [IMfantEngine(mfsa) for mfsa in compiled.mfsas]
            self._groups.append((members, engines))

    def scan(self, data: bytes | str) -> list[tuple[SnortRule, int]]:
        """All alerts on the stream, ordered by end offset."""
        alerts: list[tuple[SnortRule, int]] = []
        for members, engines in self._groups:
            for engine in engines:
                for rule_index, end in engine.run(data, collect_stats=False).matches:
                    alerts.append((members[rule_index], end))
        alerts.sort(key=lambda pair: (pair[1], pair[0].sid or 0))
        return alerts
