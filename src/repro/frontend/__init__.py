"""Front-end of the compilation framework: POSIX ERE lexing and parsing.

The paper implements this stage with Flex and Bison; we provide an
equivalent hand-written lexer (:mod:`repro.frontend.lexer`) and
recursive-descent parser (:mod:`repro.frontend.parser`) producing the
typed AST of :mod:`repro.frontend.ast`.
"""

from repro.frontend.ast import (
    Alternation,
    AstNode,
    Concat,
    Empty,
    Literal,
    Repeat,
)
from repro.frontend.errors import RegexSyntaxError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse

__all__ = [
    "Alternation",
    "AstNode",
    "Concat",
    "Empty",
    "Literal",
    "Repeat",
    "RegexSyntaxError",
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
]
