"""Recursive-descent parser for POSIX extended regular expressions.

Grammar (standard ERE, minus anchors and backreferences):

    alternation := concat ('|' concat)*
    concat      := repeat*
    repeat      := atom quantifier*
    quantifier  := '*' | '+' | '?' | '{m}' | '{m,}' | '{m,n}'
    atom        := CHAR | CHARCLASS | '(' alternation ')'

An empty concat (e.g. one side of ``(a|)`` or the whole pattern ``""``)
parses to :class:`repro.frontend.ast.Empty`.
"""

from __future__ import annotations

from repro.frontend.ast import (
    AstNode,
    Empty,
    Literal,
    Repeat,
    alternation,
    concat,
)
from repro.frontend.errors import RegexSyntaxError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.labels import CharClass

_QUANTIFIERS = {
    TokenKind.STAR: (0, None),
    TokenKind.PLUS: (1, None),
    TokenKind.QUESTION: (0, 1),
}

_ATOM_STARTERS = {TokenKind.CHAR, TokenKind.CHARCLASS, TokenKind.LPAREN}


class _Parser:
    def __init__(self, pattern: str, tokens: list[Token]) -> None:
        self.pattern = pattern
        self.tokens = tokens
        self.index = 0

    # -- token helpers ---------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def error(self, message: str, token: Token) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, token.position)

    # -- grammar ---------------------------------------------------------

    def parse_alternation(self) -> AstNode:
        branches = [self.parse_concat()]
        while self.peek().kind is TokenKind.ALTERNATE:
            self.advance()
            branches.append(self.parse_concat())
        if len(branches) == 1:
            return branches[0]
        return alternation(branches)

    def parse_concat(self) -> AstNode:
        parts: list[AstNode] = []
        while self.peek().kind in _ATOM_STARTERS:
            parts.append(self.parse_repeat())
        if not parts:
            return Empty()
        return concat(parts)

    def parse_repeat(self) -> AstNode:
        node = self.parse_atom()
        while True:
            token = self.peek()
            if token.kind in _QUANTIFIERS:
                self.advance()
                low, high = _QUANTIFIERS[token.kind]
                node = Repeat(node, low, high)
            elif token.kind is TokenKind.REPEAT:
                self.advance()
                low, high = token.value  # type: ignore[misc]
                node = Repeat(node, low, high)
            else:
                return node

    def parse_atom(self) -> AstNode:
        token = self.advance()
        if token.kind is TokenKind.CHAR:
            return Literal(CharClass.single(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.CHARCLASS:
            charclass = token.value
            assert isinstance(charclass, CharClass)
            if charclass.is_empty():
                raise self.error("empty character class matches nothing", token)
            return Literal(charclass)
        if token.kind is TokenKind.LPAREN:
            inner = self.parse_alternation()
            closing = self.advance()
            if closing.kind is not TokenKind.RPAREN:
                raise self.error("expected ')'", closing)
            return inner
        if token.kind is TokenKind.RPAREN:
            raise self.error("unmatched ')'", token)
        if token.kind in (TokenKind.STAR, TokenKind.PLUS, TokenKind.QUESTION, TokenKind.REPEAT):
            raise self.error("quantifier with nothing to repeat", token)
        raise self.error("unexpected end of pattern", token)


def parse(pattern: str) -> AstNode:
    """Parse an ERE pattern into an AST.

    Raises :class:`RegexSyntaxError` for lexical or syntactic errors; this
    is the paper's front-end "compliance with POSIX ERE" check.
    """
    parser = _Parser(pattern, tokenize(pattern))
    node = parser.parse_alternation()
    trailing = parser.peek()
    if trailing.kind is not TokenKind.END:
        raise parser.error("trailing input after pattern", trailing)
    return node
