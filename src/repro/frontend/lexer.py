"""Lexer for POSIX extended regular expressions.

Produces a flat token stream for :mod:`repro.frontend.parser`.  Bracket
expressions (``[...]``) are lexed as a single :data:`TokenKind.CHARCLASS`
token whose value is a fully-resolved :class:`repro.labels.CharClass`,
since their internal grammar is independent of the surrounding ERE
grammar.  Escapes are resolved here as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, Optional

from repro.frontend.errors import RegexSyntaxError
from repro.labels import CharClass

_ESCAPES = {
    "n": 0x0A,
    "t": 0x09,
    "r": 0x0D,
    "f": 0x0C,
    "v": 0x0B,
    "a": 0x07,
    "0": 0x00,
}

#: Shorthand classes (common extensions accepted by the front-end).
_SHORTHAND = {
    "d": CharClass.posix("digit"),
    "D": CharClass.posix("digit").negate(),
    "w": CharClass.posix("alnum") | CharClass.single("_"),
    "W": (CharClass.posix("alnum") | CharClass.single("_")).negate(),
    "s": CharClass.posix("space"),
    "S": CharClass.posix("space").negate(),
}


class TokenKind(Enum):
    CHAR = auto()  # a literal character (value: int byte)
    CHARCLASS = auto()  # a resolved bracket expression / dot (value: CharClass)
    LPAREN = auto()
    RPAREN = auto()
    ALTERNATE = auto()  # |
    STAR = auto()
    PLUS = auto()
    QUESTION = auto()
    REPEAT = auto()  # {m,n}; value: (low, high|None)
    END = auto()


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    position: int
    value: object = None

    def __repr__(self) -> str:  # compact for test failure output
        if self.value is None:
            return f"<{self.kind.name}@{self.position}>"
        return f"<{self.kind.name}@{self.position}:{self.value!r}>"


class _Scanner:
    """Character-level cursor over the pattern with error reporting."""

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.pattern)

    def peek(self) -> Optional[str]:
        return None if self.eof() else self.pattern[self.pos]

    def advance(self) -> str:
        ch = self.pattern[self.pos]
        self.pos += 1
        return ch

    def error(self, message: str, position: Optional[int] = None) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos if position is None else position)


def tokenize(pattern: str) -> list[Token]:
    """Tokenize an ERE pattern; raises :class:`RegexSyntaxError` on bad input."""
    scanner = _Scanner(pattern)
    tokens: list[Token] = []
    while not scanner.eof():
        start = scanner.pos
        ch = scanner.advance()
        if ch == "(":
            tokens.append(Token(TokenKind.LPAREN, start))
        elif ch == ")":
            tokens.append(Token(TokenKind.RPAREN, start))
        elif ch == "|":
            tokens.append(Token(TokenKind.ALTERNATE, start))
        elif ch == "*":
            tokens.append(Token(TokenKind.STAR, start))
        elif ch == "+":
            tokens.append(Token(TokenKind.PLUS, start))
        elif ch == "?":
            tokens.append(Token(TokenKind.QUESTION, start))
        elif ch == "{":
            tokens.append(_lex_bound(scanner, start))
        elif ch == "}":
            raise scanner.error("unmatched '}'", start)
        elif ch == "[":
            tokens.append(Token(TokenKind.CHARCLASS, start, _lex_bracket(scanner, start)))
        elif ch == "]":
            raise scanner.error("unmatched ']'", start)
        elif ch == ".":
            tokens.append(Token(TokenKind.CHARCLASS, start, CharClass.any_char()))
        elif ch in ("^", "$"):
            raise scanner.error(
                "anchors are not supported in the streaming-match model", start
            )
        elif ch == "\\":
            tokens.append(_lex_escape(scanner, start))
        else:
            byte = ord(ch)
            if byte > 0xFF:
                raise scanner.error(f"non-byte character {ch!r}", start)
            tokens.append(Token(TokenKind.CHAR, start, byte))
    tokens.append(Token(TokenKind.END, len(pattern)))
    return tokens


def _lex_escape(scanner: _Scanner, start: int) -> Token:
    if scanner.eof():
        raise scanner.error("trailing backslash", start)
    ch = scanner.advance()
    if ch in _SHORTHAND:
        return Token(TokenKind.CHARCLASS, start, _SHORTHAND[ch])
    if ch in _ESCAPES:
        return Token(TokenKind.CHAR, start, _ESCAPES[ch])
    if ch in "123456789":
        # Non-regular operator: rejected explicitly rather than silently
        # matching a literal digit (the paper defers backreferences to
        # future work [50]).
        raise scanner.error(f"backreference \\{ch} is not supported (non-regular)", start)
    if ch == "x":
        return Token(TokenKind.CHAR, start, _lex_hex(scanner, start))
    byte = ord(ch)
    if byte > 0xFF:
        raise scanner.error(f"non-byte character {ch!r}", start)
    # POSIX: a backslash before any other character matches that character.
    return Token(TokenKind.CHAR, start, byte)


def _lex_hex(scanner: _Scanner, start: int) -> int:
    digits = ""
    while len(digits) < 2 and not scanner.eof() and scanner.peek() in "0123456789abcdefABCDEF":
        digits += scanner.advance()
    if len(digits) != 2:
        raise scanner.error("\\x escape requires two hex digits", start)
    return int(digits, 16)


def _lex_bound(scanner: _Scanner, start: int) -> Token:
    """Lex the interior of ``{m}``, ``{m,}`` or ``{m,n}``."""
    body = ""
    while not scanner.eof() and scanner.peek() != "}":
        body += scanner.advance()
    if scanner.eof():
        raise scanner.error("unterminated '{' bound", start)
    scanner.advance()  # consume '}'
    head, sep, tail = body.partition(",")
    if not head.isdigit():
        raise scanner.error(f"invalid repetition bound {{{body}}}", start)
    low = int(head)
    if not sep:
        high: Optional[int] = low
    elif tail == "":
        high = None
    elif tail.isdigit():
        high = int(tail)
    else:
        raise scanner.error(f"invalid repetition bound {{{body}}}", start)
    if high is not None and high < low:
        raise scanner.error(f"repetition bound {{{body}}} has max < min", start)
    return Token(TokenKind.REPEAT, start, (low, high))


def _lex_bracket(scanner: _Scanner, start: int) -> CharClass:
    """Lex a bracket expression body (the ``[`` is already consumed)."""
    negated = False
    if scanner.peek() == "^":
        scanner.advance()
        negated = True
    members = CharClass.empty()
    first = True
    while True:
        if scanner.eof():
            raise scanner.error("unterminated bracket expression", start)
        if scanner.peek() == "]" and not first:
            scanner.advance()
            break
        item, item_is_class = _bracket_item(scanner, start)
        first = False
        # Range detection: item '-' item, where both ends are single chars.
        if (
            not item_is_class
            and scanner.peek() == "-"
            and _range_end_follows(scanner)
        ):
            scanner.advance()  # consume '-'
            end, end_is_class = _bracket_item(scanner, start)
            if end_is_class:
                raise scanner.error("character class cannot end a range", start)
            if end < item:
                raise scanner.error("reversed range in bracket expression", start)
            members = members | CharClass.from_range(item, end)
        elif item_is_class:
            members = members | item  # type: ignore[operator]
        else:
            members = members | CharClass.single(item)  # type: ignore[arg-type]
    return members.negate() if negated else members


def _range_end_follows(scanner: _Scanner) -> bool:
    """True when the '-' at the cursor starts a range (not a literal '-]')."""
    nxt = scanner.pattern[scanner.pos + 1] if scanner.pos + 1 < len(scanner.pattern) else None
    return nxt is not None and nxt != "]"


def _bracket_item(scanner: _Scanner, start: int) -> tuple[object, bool]:
    """One bracket item: returns ``(byte, False)`` or ``(CharClass, True)``."""
    ch = scanner.advance()
    if ch == "[" and scanner.peek() == ":":
        scanner.advance()  # ':'
        name = ""
        while not scanner.eof() and scanner.peek() != ":":
            name += scanner.advance()
        if scanner.eof():
            raise scanner.error("unterminated [:class:]", start)
        scanner.advance()  # ':'
        if scanner.eof() or scanner.advance() != "]":
            raise scanner.error("malformed [:class:]", start)
        try:
            return CharClass.posix(name), True
        except ValueError as exc:
            raise scanner.error(str(exc), start) from None
    if ch == "\\":
        if scanner.eof():
            raise scanner.error("trailing backslash in bracket expression", start)
        esc = scanner.advance()
        if esc in _SHORTHAND:
            return _SHORTHAND[esc], True
        if esc in _ESCAPES:
            return _ESCAPES[esc], False
        if esc == "x":
            return _lex_hex(scanner, start), False
        return ord(esc), False
    byte = ord(ch)
    if byte > 0xFF:
        raise scanner.error(f"non-byte character {ch!r}", start)
    return byte, False


def token_stream(pattern: str) -> Iterator[Token]:
    """Convenience generator wrapper over :func:`tokenize`."""
    yield from tokenize(pattern)
