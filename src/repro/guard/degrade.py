"""The match-time degradation ladder: dense → lazy → numpy → python → per-rule.

A governed service must keep answering under pressure, just slower.
:class:`GuardedMatcher` owns the engines for a (possibly quarantined)
compilation and walks the backend ladder when trouble shows up:

* **allocation failure** (a real :class:`MemoryError` during backend
  setup, surfaced as :class:`~repro.guard.errors.AllocationFailed`) —
  the matcher steps down a backend and retries the run immediately; the
  answer of the retried run is exact, not approximate;
* **counting-register pressure** (counting backend only) — a register
  allocation refused by the budget or the fault injector (surfaced as
  :class:`~repro.guard.errors.AllocationFailed` with
  ``stage == "counting.registers"``) demotes ``counting`` straight to
  ``lazy`` with a typed ``counting-register-pressure:`` reason.  The
  demoted engines run the loop-**expanded** automaton, so the retried
  answer stays exact — it just pays the state cost counting avoided;
* **dense promotion failure** (dense backend only) — a dense-tier table
  build that fails allocation or blows its modelled memory budget
  (:class:`~repro.guard.errors.AllocationFailed` /
  :class:`~repro.guard.budget.MemoryBudgetExceeded`) never corrupts the
  in-flight run: the engine answers lazily and flags itself, and the
  matcher steps the ladder down to ``lazy`` for subsequent runs;
* **cache thrash** (dense/lazy backends) — when a run's lazy-cache hit
  rate stays under the policy threshold after a warm-up's worth of
  lookups, the next runs use the next backend down.  Thrash never
  corrupts results (the lazy backend is exact at any hit rate), it only
  wastes time, so degradation happens *between* runs, not mid-run;
* **quarantined rules** — entries carrying a salvaged ``fallback_fsa``
  are matched by per-rule NFA simulation after the merged-MFSA pass and
  stitched into the same match set under their original rule ids, so
  the caller-visible semantics of the full ruleset survive quarantine.

Scan deadlines are *not* degradation triggers: a blown deadline is a
taxonomy error (:class:`~repro.guard.errors.ScanDeadlineExceeded`,
carrying the partial result) because silently re-running a slow scan on
a slower backend would make the overload worse.

Every step down increments ``guard_degradations_total`` on the active
:mod:`repro.obs` registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import repro.obs as obs
from repro.engine.counters import ExecutionStats
from repro.engine.imfant import IMfantEngine
from repro.engine.lazy import DEFAULT_CACHE_SIZE
from repro.engine.multithread import run_pool
from repro.guard.errors import AllocationFailed, UsageError
from repro.guard.quarantine import QuarantineReport

__all__ = [
    "BACKEND_LADDER",
    "DegradePolicy",
    "DegradationStep",
    "GuardedMatcher",
    "GuardedRunResult",
    "alloc_degrade_reason",
]


def alloc_degrade_reason(exc: AllocationFailed) -> str:
    """Typed ladder-step reason for an allocation failure.

    Counting-register pressure (``stage == "counting.registers"``) gets
    its own prefix so operators can tell a demotion forced by counter
    budgets apart from a generic backend-setup failure.
    """
    if getattr(exc, "stage", None) == "counting.registers":
        return f"counting-register-pressure: {exc}"
    return f"allocation-failure: {exc}"

#: Fastest-first backend order; degradation only ever moves rightward.
#: ``counting`` sits *beside* the ladder, not on it: it is the only
#: backend that can run an un-expanded :class:`CountingMfsa`, and it
#: demotes straight to ``lazy`` (over the expanded automaton) rather
#: than stepping through an index.
BACKEND_LADDER = ("dense", "lazy", "numpy", "python")


@dataclass(frozen=True)
class DegradePolicy:
    """When the ladder steps down (see module docstring)."""

    #: react to AllocationFailed by stepping down and retrying
    on_alloc_failure: bool = True
    #: react to lazy-cache thrash by stepping down for subsequent runs
    on_cache_thrash: bool = True
    #: lookups a run must make before its hit rate is judged
    min_lookups: int = 1024
    #: hit rate below this (after min_lookups) counts as thrashing
    thrash_hit_rate: float = 0.5


@dataclass(frozen=True)
class DegradationStep:
    """One recorded step down the ladder."""

    from_backend: str
    to_backend: str
    reason: str


@dataclass
class GuardedRunResult:
    """One guarded scan: matches in *original* rule ids + provenance."""

    matches: set
    stats: ExecutionStats
    #: backend that produced the merged-MFSA matches
    backend: str
    #: ladder steps taken so far (cumulative over the matcher's life)
    degradations: list = field(default_factory=list)
    #: original ids of quarantined rules matched via per-rule fallback
    fallback_rules: list = field(default_factory=list)


class GuardedMatcher:
    """Degradation-aware matcher over one compilation's MFSAs.

    ``rule_map`` maps local rule ids (positions in the compiled ruleset)
    to original rule ids; ``quarantine`` supplies fallback FSAs for
    isolated rules.  Both default to the trivial un-quarantined case.
    """

    def __init__(
        self,
        mfsas: Sequence,
        *,
        rule_map: Optional[Sequence[int]] = None,
        quarantine: Optional[QuarantineReport] = None,
        backend: str = "python",
        policy: Optional[DegradePolicy] = None,
        scan_deadline: Optional[float] = None,
        threads: int = 1,
        single_match: bool = False,
        lazy_cache_size: int = DEFAULT_CACHE_SIZE,
        lazy_eviction: str = "flush",
        dense_promote_after: Optional[int] = None,
        dense_budget=None,
        counting_budget=None,
    ) -> None:
        if backend not in BACKEND_LADDER and backend != "counting":
            raise UsageError(
                f"unknown backend {backend!r}; choose from "
                f"{BACKEND_LADDER + ('counting',)}"
            )
        self.mfsas = list(mfsas)
        self.rule_map = list(rule_map) if rule_map is not None else None
        self.quarantine = quarantine or QuarantineReport()
        self.backend = backend
        self.policy = policy or DegradePolicy()
        self.scan_deadline = scan_deadline
        self.threads = threads
        self.single_match = single_match
        self.lazy_cache_size = lazy_cache_size
        self.lazy_eviction = lazy_eviction
        self.dense_promote_after = dense_promote_after
        self.dense_budget = dense_budget
        self.counting_budget = counting_budget
        self.degradations: list = []
        self._engines: Optional[list] = None

    @classmethod
    def from_compilation(cls, compilation, **kwargs) -> "GuardedMatcher":
        """Build from a :class:`~repro.guard.compiler.GuardedCompilation`."""
        if compilation.result is None:
            raise UsageError("compilation has no surviving rules to match")
        return cls(
            compilation.result.mfsas,
            rule_map=compilation.surviving_ids,
            quarantine=compilation.quarantine,
            **kwargs,
        )

    # -- ladder -----------------------------------------------------------

    def _degrade(self, reason: str) -> bool:
        """Step down one backend; False when already at the bottom."""
        if self.backend == "counting":
            # Registers are gone; the lazy backend over the expanded
            # automaton is the exact replacement (the IMfant constructor
            # expands a CountingMfsa for every non-counting backend).
            to_backend = "lazy"
        else:
            position = BACKEND_LADDER.index(self.backend)
            if position + 1 >= len(BACKEND_LADDER):
                return False
            to_backend = BACKEND_LADDER[position + 1]
        step = DegradationStep(
            from_backend=self.backend,
            to_backend=to_backend,
            reason=reason,
        )
        self.backend = step.to_backend
        self.degradations.append(step)
        self._engines = None
        registry = obs.get_registry()
        if registry is not None:
            registry.counter(
                "guard_degradations_total",
                help="backend degradation steps taken by guarded matchers",
            ).inc()
        return True

    _alloc_reason = staticmethod(alloc_degrade_reason)

    def _ensure_engines(self) -> list:
        while True:
            if self._engines is not None:
                return self._engines
            dense_kwargs = {}
            if self.dense_promote_after is not None:
                dense_kwargs["dense_promote_after"] = self.dense_promote_after
            if self.dense_budget is not None:
                dense_kwargs["dense_budget"] = self.dense_budget
            if self.counting_budget is not None:
                dense_kwargs["counting_budget"] = self.counting_budget
            try:
                self._engines = [
                    IMfantEngine(
                        mfsa,
                        backend=self.backend,
                        single_match=self.single_match,
                        scan_deadline=self.scan_deadline,
                        lazy_cache_size=self.lazy_cache_size,
                        lazy_eviction=self.lazy_eviction,
                        **dense_kwargs,
                    )
                    for mfsa in self.mfsas
                ]
            except AllocationFailed as exc:
                if not (self.policy.on_alloc_failure and self._degrade(self._alloc_reason(exc))):
                    raise

    # -- matching ---------------------------------------------------------

    def run(self, data) -> GuardedRunResult:
        """Scan ``data``; returns matches in original rule ids.

        Retries on allocation failure (one ladder step per retry);
        checks for lazy-cache thrash afterwards and pre-degrades the
        *next* run.  :class:`ScanDeadlineExceeded` propagates.
        """
        payload = data.encode("latin-1") if isinstance(data, str) else data
        with obs.span("guard.run", backend=self.backend, automata=len(self.mfsas)):
            while True:
                engines = self._ensure_engines()
                before = self._cache_totals(engines)
                try:
                    matches, stats = run_pool(
                        [lambda e=e: e.run(payload) for e in engines], self.threads
                    )
                    break
                except AllocationFailed as exc:
                    if not (self.policy.on_alloc_failure and self._degrade(self._alloc_reason(exc))):
                        raise
            used_backend = self.backend
            if used_backend == "dense" and self.policy.on_alloc_failure:
                self._check_dense_demotion(engines)
            if used_backend in ("lazy", "dense") and self.policy.on_cache_thrash:
                self._check_thrash(engines, before)

        if self.rule_map is not None:
            matches = {(self.rule_map[rule], end) for rule, end in matches}
        fallback_rules = []
        for entry in self.quarantine.salvaged():
            from repro.automata.simulate import find_match_ends

            fallback_rules.append(entry.rule)
            for end in find_match_ends(entry.fallback_fsa, payload):
                matches.add((entry.rule, end))
        return GuardedRunResult(
            matches=matches,
            stats=stats,
            backend=used_backend,
            degradations=list(self.degradations),
            fallback_rules=fallback_rules,
        )

    def _check_dense_demotion(self, engines) -> None:
        """Step to ``lazy`` when any engine's dense promotion failed
        (allocation failure or modelled-memory budget): the failed run
        already answered lazily and exactly; the ladder step just stops
        re-attempting table builds on every subsequent payload."""
        if any(getattr(e, "_dense_disabled", False) for e in engines):
            self._degrade("dense-promotion-failed: table build rejected")

    @staticmethod
    def _cache_totals(engines) -> tuple:
        hits = misses = 0
        for engine in engines:
            cache = getattr(engine, "lazy_cache", None)
            if cache is not None:
                hits += cache.stats.hits
                misses += cache.stats.misses
        return hits, misses

    def _check_thrash(self, engines, before: tuple) -> None:
        hits, misses = self._cache_totals(engines)
        run_hits, run_misses = hits - before[0], misses - before[1]
        lookups = run_hits + run_misses
        if lookups < self.policy.min_lookups:
            return
        hit_rate = run_hits / lookups
        if hit_rate < self.policy.thrash_hit_rate:
            self._degrade(
                f"cache-thrash: hit rate {hit_rate:.1%} < "
                f"{self.policy.thrash_hit_rate:.1%} over {lookups} lookups"
            )
