"""Per-rule quarantine around the compilation pipeline.

:class:`GuardedCompiler` wraps :func:`repro.pipeline.compiler.
compile_ruleset` with failure isolation: when a governed compile fails,
the ruleset is bisected until the failure is attributed to individual
rules, the offenders land in a :class:`~repro.guard.quarantine.
QuarantineReport`, and the surviving rules still ship a working MFSA.
One pathological rule no longer takes the batch down.

Attribution strategy
====================

``compile_ruleset`` is all-or-nothing, so attribution works on subsets:

1. try the full id set; success → no quarantine;
2. on a :class:`~repro.guard.errors.ReproError`, bisect: a failing
   singleton is quarantined (its error, stage and budget counters go in
   the report); otherwise recurse into both halves and re-try the
   combined survivors;
3. if both halves pass individually but their union fails — a *group*
   budget blown by combination, not by any one bad rule — the heaviest
   remaining rule (longest pattern, the cheap proxy for automaton size)
   is evicted and the loop continues.  Every round shrinks the set, so
   termination is structural.

Subset compile outcomes are memoised, so the final survivors' result is
reused rather than recompiled.

Rules evicted at group level are *individually* sound; their solo FSAs
are salvaged onto the quarantine entry (``fallback_fsa``) so the
degradation ladder (:mod:`repro.guard.degrade`) can preserve their match
semantics by per-rule simulation.  Rules that fail alone have nothing to
salvage.

Rule identity
=============

``compile_ruleset`` numbers rules by position, so the survivors' MFSA
speaks *local* ids.  :attr:`GuardedCompilation.surviving_ids` maps local
→ original, and :meth:`GuardedCompilation.remap_matches` translates an
engine's match set back into original rule ids — the contract the
guarded matcher and the CLI rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import repro.obs as obs
from repro.guard.budget import Budget
from repro.guard.errors import ReproError, RuleQuarantined, UsageError
from repro.guard.quarantine import QuarantineEntry, QuarantineReport
from repro.pipeline.compiler import CompilationResult, CompileOptions, compile_ruleset

__all__ = ["GuardedCompilation", "GuardedCompiler", "ON_ERROR_POLICIES"]

ON_ERROR_POLICIES = ("fail", "quarantine")


@dataclass
class GuardedCompilation:
    """Outcome of one guarded compile: survivors' result + audit trail."""

    patterns: list
    options: CompileOptions
    #: the survivors' compilation (None when every rule was quarantined)
    result: Optional[CompilationResult]
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)
    #: local rule id (position in ``result``) -> original rule id
    surviving_ids: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.quarantine

    @property
    def partial(self) -> bool:
        return bool(self.quarantine) and self.result is not None

    def remap_matches(self, matches: set) -> set:
        """Translate ``(local_rule, end)`` matches to original rule ids."""
        return {(self.surviving_ids[rule], end) for rule, end in matches}


class GuardedCompiler:
    """Compile rulesets with per-rule failure isolation (see module doc).

    ``on_error="quarantine"`` (default) isolates offenders and ships the
    survivors; ``on_error="fail"`` propagates the first taxonomy error
    unchanged (the pre-guard behaviour, still under budgets).
    """

    def __init__(
        self,
        options: Optional[CompileOptions] = None,
        budget: Optional[Budget] = None,
        on_error: str = "quarantine",
    ) -> None:
        if on_error not in ON_ERROR_POLICIES:
            raise UsageError(
                f"unknown on_error policy {on_error!r}; choose from {ON_ERROR_POLICIES}"
            )
        options = options or CompileOptions()
        if budget is not None:
            options = replace(options, budget=budget)
        self.options = options
        self.on_error = on_error

    # -- public API -------------------------------------------------------

    def compile(self, patterns: Sequence[str]) -> GuardedCompilation:
        patterns = list(patterns)
        if not patterns:
            raise UsageError("cannot compile an empty ruleset")
        self._patterns = patterns
        self._cache: dict = {}
        report = QuarantineReport()

        with obs.span("guard.compile", rules=len(patterns), on_error=self.on_error):
            if self.on_error == "fail":
                result = compile_ruleset(patterns, self.options)
                survivors = list(range(len(patterns)))
            else:
                survivors = self._survivors(tuple(range(len(patterns))), report)
                result = None
                if survivors:
                    outcome = self._try(tuple(survivors))
                    assert not isinstance(outcome, ReproError)
                    result = outcome
                self._salvage(report)
            self._emit_metrics(report)

        if self.on_error == "quarantine" and not survivors:
            raise RuleQuarantined(
                f"all {len(patterns)} rule(s) quarantined; nothing to compile "
                f"(first: {report.entries[0].message})",
            )
        return GuardedCompilation(
            patterns=patterns,
            options=self.options,
            result=result,
            quarantine=report,
            surviving_ids=list(survivors),
        )

    # -- attribution ------------------------------------------------------

    def _try(self, ids: tuple):
        """Compile the subset; memoised ``CompilationResult | ReproError``."""
        cached = self._cache.get(ids)
        if cached is not None:
            return cached
        try:
            outcome = compile_ruleset([self._patterns[i] for i in ids], self.options)
        except ReproError as exc:
            outcome = exc
        self._cache[ids] = outcome
        return outcome

    def _survivors(self, ids: tuple, report: QuarantineReport) -> list:
        if not ids:
            return []
        outcome = self._try(ids)
        if not isinstance(outcome, ReproError):
            return list(ids)
        if len(ids) == 1:
            self._quarantine(ids[0], outcome, report)
            return []
        mid = len(ids) // 2
        left = self._survivors(ids[:mid], report)
        right = self._survivors(ids[mid:], report)
        merged = left + right
        if tuple(merged) != ids:
            return self._survivors(tuple(merged), report) if merged else []
        # Both halves compile but the union does not: evict the heaviest
        # rule (longest pattern — the cheap size proxy) and keep going.
        victim = max(ids, key=lambda i: (len(self._patterns[i]), i))
        self._quarantine(victim, outcome, report, evicted=True)
        return self._survivors(tuple(i for i in ids if i != victim), report)

    def _quarantine(
        self, rule: int, error: ReproError, report: QuarantineReport, evicted: bool = False
    ) -> None:
        message = str(error)
        # Subset compiles renumber rules from 0; rewrite a leading local
        # "rule N: " provenance prefix to the original rule id.
        local = getattr(error, "rule", None)
        if local is not None and local != rule and message.startswith(f"rule {local}: "):
            message = f"rule {rule}: " + message[len(f"rule {local}: "):]
        if evicted:
            message = f"group compile failed with: {message}"
        report.add(
            QuarantineEntry(
                rule=rule,
                pattern=self._patterns[rule],
                stage=error.stage or ("merging" if evicted else "compile"),
                error_type=type(error).__name__,
                message=message,
                counters=dict(getattr(error, "counters", None) or {}),
                evicted=evicted,
            )
        )

    def _salvage(self, report: QuarantineReport) -> None:
        """Attach solo FSAs to group-evicted rules for fallback matching.

        Fallbacks are matched by plain-NFA simulation
        (:func:`repro.automata.simulate.find_match_ends`), which has no
        counter-register semantics — so under ``counting=True`` the solo
        fallback is recompiled with counting off (the expanded chain),
        bypassing the subset memo (it caches counting outcomes).
        """
        options = self.options
        memoised = not options.counting
        if not memoised:
            options = replace(options, counting=False)
        for entry in report.entries:
            if not entry.evicted:
                continue
            if memoised:
                outcome = self._try((entry.rule,))
            else:
                try:
                    outcome = compile_ruleset([self._patterns[entry.rule]], options)
                except ReproError as exc:
                    outcome = exc
            if not isinstance(outcome, ReproError) and outcome.fsas:
                entry.fallback_fsa = outcome.fsas[0]

    # -- observability ----------------------------------------------------

    def _emit_metrics(self, report: QuarantineReport) -> None:
        registry = obs.get_registry()
        if registry is None:
            return
        # get-or-create all guard instruments so they are visible (at 0)
        # in any captured run, quarantine or not
        registry.counter(
            "guard_budget_exceeded_total",
            help="resource-budget violations raised by the guard layer",
        )
        registry.counter(
            "guard_degradations_total",
            help="backend degradation steps taken by guarded matchers",
        )
        registry.gauge(
            "guard_quarantined_rules",
            help="rules quarantined by the last guarded compilation",
        ).set(len(report))
