"""Fault injection: deterministic failure drills for the guard layer.

Production resilience claims ("a bad rule is quarantined", "a stalled
scan hits its deadline", "allocation failure degrades the backend") are
only worth anything if they are *exercised*; this module provides the
switchboard.  Injection points are string-named; each site in the
pipeline calls :func:`fire` (or :func:`value`) with its point name and
context, and the call is a no-op single dict test unless that point was
armed — hot loops additionally gate the call behind their existing
stride checks, so the disarmed cost on the scan path is zero.

Points
======

``compile.rule``
    Raise :class:`InjectedFaultError` while compiling a rule.  The arg
    selects the victim: a substring matched against the rule's pattern
    text (``True`` = every rule).  Fired in the per-rule frontend loop.
``compile.stage``
    Raise :class:`InjectedFaultError` on entry to a named compile stage
    (arg = stage name: ``frontend``, ``ast_to_fsa``, ``single_opt``,
    ``merging``, ``backend``; ``True`` = first stage).
``engine.step_delay``
    Sleep ``arg`` seconds at every engine deadline-check stride — the
    "slow adversarial payload" simulator that lets tests trip scan
    deadlines deterministically.
``lazy.cache_pressure``
    Clamp the lazy backend's transition-cache budget to ``arg`` entries
    (``True`` = 1): every step evicts, the cache thrashes, and the
    degradation ladder must react.  Read via :func:`value` at cache
    construction.
``alloc``
    Raise :class:`MemoryError` during engine backend setup.  The arg
    selects the backend name (``True`` = any); the engine wraps it into
    :class:`~repro.guard.errors.AllocationFailed`.
``counting.register_pressure``
    Raise :class:`MemoryError` while the counting backend allocates its
    counter registers (``True`` = any allocation; an int = only when at
    least that many registers are requested).  The engine wraps it into
    :class:`~repro.guard.errors.AllocationFailed` with the
    ``counting.registers`` stage, so guarded matchers step the ladder
    (counting → lazy) instead of crashing.
``serve.worker.kill``
    Hard-kill the shard worker *process* (``os._exit``) on scan entry —
    the dead-worker drill the :class:`~repro.serve.resilience.
    ShardSupervisor` must recover from.  Only fired from process-mode
    workers (killing a thread worker would kill the whole service).
    ``True`` = every scan; a float in (0, 1) = per-scan probability.
``serve.worker.hang``
    Sleep on shard-scan entry, ignoring the engine deadline — the
    wedged-worker drill for the per-scan watchdog.  The arg is the hang
    in seconds (``True`` = 30).
``serve.conn.drop``
    Drop the server-side connection instead of writing a reply — the
    client sees a mid-frame EOF and must reconnect/retry.  ``True`` =
    every reply; a float in (0, 1) = probability.  Read via
    :func:`decide` in the reply path.
``serve.frame.truncate``
    Write only the first half of a response frame, then drop the
    connection — the torn-frame drill for the client's
    :class:`~repro.guard.errors.ConnectionLost` handling.  Arg as for
    ``serve.conn.drop``.

Activation
==========

Programmatic (tests)::

    with faultinject.inject("compile.rule", "EVIL"):
        GuardedCompiler(...).compile(patterns)

Environment (CLI / CI)::

    REPRO_FAULTS='engine.step_delay=0.01,alloc=numpy' repro match ...

The environment is parsed once at import; :func:`load_env` re-reads it.
Injection state is process-global and **not** thread-scoped on purpose:
faults must reach pool workers too.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.guard.errors import CompileError

__all__ = [
    "POINTS",
    "InjectedFaultError",
    "inject",
    "fire",
    "decide",
    "value",
    "is_active",
    "active_points",
    "arm",
    "disarm",
    "clear",
    "load_env",
]

POINTS = (
    "compile.rule",
    "compile.stage",
    "engine.step_delay",
    "lazy.cache_pressure",
    "alloc",
    "counting.register_pressure",
    "serve.worker.kill",
    "serve.worker.hang",
    "serve.conn.drop",
    "serve.frame.truncate",
)

_ACTIVE: Dict[str, Any] = {}


class InjectedFaultError(CompileError):
    """The error an armed compile injection point raises.  A
    :class:`~repro.guard.errors.CompileError`, so everything downstream
    (quarantine, exit codes, the CLI handler) treats it like a real
    compile failure — which is the point."""

    default_stage = "faultinject"


def arm(point: str, arg: Any = True) -> None:
    """Arm an injection point until :func:`disarm`/:func:`clear`."""
    if point not in POINTS:
        raise ValueError(f"unknown fault point {point!r}; choose from {POINTS}")
    _ACTIVE[point] = arg


def disarm(point: str) -> None:
    _ACTIVE.pop(point, None)


def clear() -> None:
    """Disarm everything (test teardown)."""
    _ACTIVE.clear()


def is_active(point: str) -> bool:
    return point in _ACTIVE


def active_points() -> tuple:
    return tuple(sorted(_ACTIVE))


def value(point: str, default: Any = None) -> Any:
    """The armed arg for ``point`` (``default`` when disarmed)."""
    return _ACTIVE.get(point, default)


@contextmanager
def inject(point: str, arg: Any = True) -> Iterator[None]:
    """Scoped arming — the pytest-fixture-friendly form."""
    previous = _ACTIVE.get(point, _MISSING)
    arm(point, arg)
    try:
        yield
    finally:
        if previous is _MISSING:
            _ACTIVE.pop(point, None)
        else:
            _ACTIVE[point] = previous


_MISSING = object()


def fire(point: str, **ctx: Any) -> None:
    """Trigger ``point`` with site context; no-op when disarmed.

    Call sites pass whatever identifies the event (``rule=``,
    ``pattern=``, ``stage=``, ``backend=``); the armed arg decides
    whether this particular event is the victim.
    """
    if not _ACTIVE:  # fast path: nothing armed
        return
    arg = _ACTIVE.get(point)
    if arg is None:
        return

    if point == "compile.rule":
        pattern = ctx.get("pattern", "")
        if arg is True or (isinstance(arg, str) and arg in pattern):
            raise InjectedFaultError(
                f"injected compile fault at rule {ctx.get('rule')} ({pattern!r})",
                stage=ctx.get("stage", "frontend"),
                rule=ctx.get("rule"),
            )
    elif point == "compile.stage":
        stage = ctx.get("stage")
        if arg is True or arg == stage:
            raise InjectedFaultError(
                f"injected compile fault at stage {stage!r}", stage=stage
            )
    elif point == "engine.step_delay":
        time.sleep(float(arg) if arg is not True else 0.001)
    elif point == "alloc":
        backend = ctx.get("backend")
        if arg is True or arg == backend:
            raise MemoryError(f"injected allocation failure (backend {backend!r})")
    elif point == "counting.register_pressure":
        registers = ctx.get("registers", 0)
        threshold = 1 if arg is True else int(arg)
        if registers >= threshold:
            raise MemoryError(
                f"injected counting-register pressure ({registers} register(s))"
            )
    elif point == "serve.worker.hang":
        time.sleep(float(arg) if arg is not True else 30.0)
    elif point == "serve.worker.kill":
        if decide(point):
            os._exit(17)  # simulate a hard worker death (OOM-kill, segfault)
    # lazy.cache_pressure is consumed via value() at cache construction;
    # serve.conn.drop / serve.frame.truncate are consumed via decide()
    # in the server's reply path.


def decide(point: str) -> bool:
    """Probabilistic yes/no for ``point``: False when disarmed, True when
    armed with ``True``, and a Bernoulli draw when armed with a float
    probability in (0, 1).  Used by fault sites that *choose* a failure
    (drop this connection?  kill this worker?) rather than raise one."""
    if not _ACTIVE:  # fast path: nothing armed
        return False
    arg = _ACTIVE.get(point)
    if arg is None:
        return False
    if arg is True:
        return True
    try:
        probability = float(arg)
    except (TypeError, ValueError):
        return False
    if probability >= 1.0:
        return True
    import random

    return random.random() < probability


def load_env(environ: Optional[dict] = None) -> int:
    """Parse ``REPRO_FAULTS=point[=arg][,point…]`` into armed points.

    Args parse as float when possible, else stay strings; a bare point
    arms with ``True``.  Returns the number of armed points.  Unknown
    point names raise :class:`ValueError` — a typo in a fault drill must
    not silently test nothing.
    """
    env = os.environ if environ is None else environ
    spec = env.get("REPRO_FAULTS", "")
    count = 0
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, raw = item.partition("=")
        arg: Any = True
        if raw:
            try:
                arg = float(raw)
            except ValueError:
                arg = raw
        arm(name.strip(), arg)
        count += 1
    return count


load_env()
