"""Resource budgets and the cooperative meter that enforces them.

A :class:`Budget` is an immutable description of what one governed
operation may consume; :meth:`Budget.start` mints a :class:`BudgetMeter`
— the mutable per-operation tracker the pipeline stages charge against.
Exceeding any limit raises a :class:`~repro.guard.errors.BudgetExceeded`
branch error carrying the limit, the usage and a counter snapshot; it
never hangs and never kills the process.

Design notes:

* **Cooperative, not preemptive.**  Every construction loop that can
  blow up (loop expansion, ε-removal, merging walks, subset
  construction) calls ``charge_*`` as it allocates, and the long scan
  loops call :meth:`BudgetMeter.check_deadline` every ``check_stride``
  positions — a modulo plus a ``perf_counter`` read, cheap enough for
  the hot path and entirely absent when no budget is configured (the
  meter is ``None`` and call sites skip it behind one ``is not None``
  test, the same pattern :mod:`repro.obs` uses).
* **Memory is accounted, not measured.**  Portable RSS measurement from
  inside a hot loop is neither cheap nor deterministic, so the meter
  charges an *approximate* byte cost per state/transition
  (:data:`STATE_BYTES` / :data:`TRANSITION_BYTES`, sized for the python
  object layout).  The ceiling is therefore a modelled bound — exactly
  what a capacity planner wants to express — not an OS enforcement.
* **Deadlines are wall-clock** (``time.perf_counter``), measured from
  :meth:`Budget.start`, so one deadline covers a whole compile or scan
  regardless of how many stages it crosses.

Every budget violation increments the ``guard_budget_exceeded_total``
counter on the active :mod:`repro.obs` registry (when one is enabled).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.guard.errors import (
    BudgetExceeded,
    CountingBudgetExceeded,
    DeadlineExceeded,
    LoopBudgetExceeded,
    MemoryBudgetExceeded,
)

__all__ = [
    "Budget",
    "BudgetMeter",
    "STATE_BYTES",
    "TRANSITION_BYTES",
    "COUNTING_REGISTER_BYTES",
]

#: Modelled bytes per automaton state / transition for the cooperative
#: memory accounting (python object layout: state sets, COO tuples,
#: belonging masks).  Deliberately round numbers — this is a capacity
#: model, not an allocator probe.
STATE_BYTES = 64
TRANSITION_BYTES = 128
#: Modelled bytes per counting register (deque headers + the sliding
#: window stacks; entries themselves are bounded by one per scan byte,
#: so the static charge covers the structure, not the stream).
COUNTING_REGISTER_BYTES = 512


def _count_budget_exceeded(resource: str) -> None:
    import repro.obs as obs

    registry = obs.get_registry()
    if registry is not None:
        registry.counter(
            "guard_budget_exceeded_total",
            help="resource-budget violations raised by the guard layer",
        ).inc()


@dataclass(frozen=True)
class Budget:
    """Limits for one governed compile or scan; ``None`` = unlimited.

    ``max_loop_copies`` caps the number of AST node copies a single
    bounded repeat may expand into *and* switches loop expansion into
    strict mode (over-budget repeats raise instead of staying
    compressed — the quarantine path needs the error).
    ``check_stride`` is the number of scan positions / inner-loop
    iterations between deadline checks.
    """

    max_states: Optional[int] = None
    max_transitions: Optional[int] = None
    max_loop_copies: Optional[int] = None
    max_memory_bytes: Optional[int] = None
    max_counting_registers: Optional[int] = None
    deadline: Optional[float] = None
    check_stride: int = 2048

    def __post_init__(self) -> None:
        for name in ("max_states", "max_transitions", "max_loop_copies",
                     "max_memory_bytes", "max_counting_registers"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (got {value})")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive (got {self.deadline})")
        if self.check_stride < 1:
            raise ValueError(f"check_stride must be >= 1 (got {self.check_stride})")

    @property
    def unlimited(self) -> bool:
        """True when no limit at all is configured."""
        return (
            self.max_states is None
            and self.max_transitions is None
            and self.max_loop_copies is None
            and self.max_memory_bytes is None
            and self.max_counting_registers is None
            and self.deadline is None
        )

    def start(self) -> "BudgetMeter":
        """Begin one governed operation (starts the deadline clock)."""
        return BudgetMeter(self)


class BudgetMeter:
    """Mutable usage tracker for one governed operation (see module doc)."""

    __slots__ = (
        "budget",
        "started",
        "deadline_at",
        "states",
        "transitions",
        "loop_copies",
        "memory_bytes",
        "counting_registers",
    )

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.started = time.perf_counter()
        self.deadline_at = (
            self.started + budget.deadline if budget.deadline is not None else None
        )
        self.states = 0
        self.transitions = 0
        self.loop_copies = 0
        self.memory_bytes = 0
        self.counting_registers = 0

    # -- charging ---------------------------------------------------------

    def charge_states(self, n: int, *, stage: str, rule: Optional[int] = None) -> None:
        self.states += n
        self.memory_bytes += n * STATE_BYTES
        limit = self.budget.max_states
        if limit is not None and self.states > limit:
            self._raise(
                BudgetExceeded, "states", limit, self.states, stage, rule,
                f"state budget exceeded: {self.states} > {limit}",
            )
        self._check_memory(stage, rule)

    def charge_transitions(self, n: int, *, stage: str, rule: Optional[int] = None) -> None:
        self.transitions += n
        self.memory_bytes += n * TRANSITION_BYTES
        limit = self.budget.max_transitions
        if limit is not None and self.transitions > limit:
            self._raise(
                BudgetExceeded, "transitions", limit, self.transitions, stage, rule,
                f"transition budget exceeded: {self.transitions} > {limit}",
            )
        self._check_memory(stage, rule)

    def charge_automaton(
        self, num_states: int, num_transitions: int, *, stage: str, rule: Optional[int] = None
    ) -> None:
        """Charge one constructed automaton's footprint in one call."""
        self.charge_states(num_states, stage=stage, rule=rule)
        self.charge_transitions(num_transitions, stage=stage, rule=rule)

    def charge_loop_copies(
        self,
        n: int,
        *,
        stage: str = "ast_to_fsa",
        rule: Optional[int] = None,
        repeat: Optional[str] = None,
    ) -> None:
        """Charge ``n`` AST node copies minted by loop expansion.

        The error names the offending repeat sub-expression (and the
        rule, when known) — the provenance ``automata.loops`` hist-
        orically dropped.
        """
        self.loop_copies += n
        limit = self.budget.max_loop_copies
        if limit is not None and self.loop_copies > limit:
            who = f"rule {rule}: " if rule is not None else ""
            what = f"repeat {repeat!r} " if repeat else ""
            _count_budget_exceeded("loop_copies")
            raise LoopBudgetExceeded(
                f"{who}{what}pushed loop expansion to {self.loop_copies} copies "
                f"> budget {limit}",
                repeat=repeat,
                limit=limit,
                used=self.loop_copies,
                counters=self.snapshot(),
                stage=stage,
                rule=rule,
            )

    def charge_counting_registers(
        self, n: int, *, stage: str = "counting.registers", rule: Optional[int] = None
    ) -> None:
        """Charge ``n`` counter registers minted by the counting compile
        (one per counting arc).  Registers are cheap next to expanded
        state chains but not free — a ruleset of thousands of bounded
        repeats still deserves a ceiling, and the error names the rule
        that crossed it."""
        self.counting_registers += n
        self.memory_bytes += n * COUNTING_REGISTER_BYTES
        limit = self.budget.max_counting_registers
        if limit is not None and self.counting_registers > limit:
            _count_budget_exceeded("counting_registers")
            raise CountingBudgetExceeded(
                f"counting-register budget exceeded: {self.counting_registers} "
                f"> {limit}",
                limit=limit,
                used=self.counting_registers,
                counters=self.snapshot(),
                stage=stage,
                rule=rule,
            )
        self._check_memory(stage, rule)

    def charge_memory(self, nbytes: int, *, stage: str, rule: Optional[int] = None) -> None:
        self.memory_bytes += nbytes
        self._check_memory(stage, rule)

    # -- checking ---------------------------------------------------------

    def check_deadline(self, *, stage: str, rule: Optional[int] = None) -> None:
        """Raise :class:`DeadlineExceeded` once the wall clock runs out."""
        if self.deadline_at is not None and time.perf_counter() > self.deadline_at:
            limit = self.budget.deadline
            _count_budget_exceeded("wall_seconds")
            raise DeadlineExceeded(
                f"deadline of {limit:.3f}s exceeded after {self.elapsed:.3f}s",
                limit=limit,
                used=self.elapsed,
                counters=self.snapshot(),
                stage=stage,
                rule=rule,
            )

    def _check_memory(self, stage: str, rule: Optional[int]) -> None:
        limit = self.budget.max_memory_bytes
        if limit is not None and self.memory_bytes > limit:
            _count_budget_exceeded("memory_bytes")
            raise MemoryBudgetExceeded(
                f"modelled memory {self.memory_bytes} B exceeds ceiling {limit} B",
                limit=limit,
                used=self.memory_bytes,
                counters=self.snapshot(),
                stage=stage,
                rule=rule,
            )

    def _raise(
        self,
        cls: type,
        resource: str,
        limit: float,
        used: float,
        stage: str,
        rule: Optional[int],
        message: str,
    ) -> None:
        _count_budget_exceeded(resource)
        raise cls(
            message,
            resource=resource,
            limit=limit,
            used=used,
            counters=self.snapshot(),
            stage=stage,
            rule=rule,
        )

    # -- reporting --------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def snapshot(self) -> dict:
        """The counters at this instant (embedded in errors and reports)."""
        return {
            "states": self.states,
            "transitions": self.transitions,
            "loop_copies": self.loop_copies,
            "memory_bytes": self.memory_bytes,
            "counting_registers": self.counting_registers,
            "elapsed_seconds": round(self.elapsed, 6),
        }
