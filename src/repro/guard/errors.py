"""The ``ReproError`` taxonomy: one catchable base for every failure.

Historically each subsystem grew its own exception class on an ad-hoc
base (``RegexSyntaxError(ValueError)``, ``DfaExplosionError
(RuntimeError)``, …), so a caller hardening a service had to enumerate
six classes across six modules — and still got bare ``ValueError``s from
the CLI glue.  The taxonomy re-parents all of them:

::

    ReproError
    ├── UsageError                 bad CLI arguments / API misuse
    ├── CompileError               pattern → automaton failures
    │   ├── RegexSyntaxError       (frontend.errors;  also ValueError)
    │   ├── SnortParseError        (frontend.snortlite; also ValueError)
    │   └── InjectedFaultError     (guard.faultinject)
    ├── FormatError                serialized-artifact problems
    │   ├── AnmlFormatError        (anml.reader;   also ValueError)
    │   └── MfsaJsonError          (mfsa.serialize; also ValueError)
    ├── ConnectionLost             a serve connection died mid-exchange
    │                              (also ConnectionError, so ``except
    │                              OSError`` call sites keep working)
    ├── BudgetExceeded             a resource budget was hit
    │   ├── LoopBudgetExceeded     (automata.loops)
    │   ├── DfaExplosionError      (dfa.dfa;        also RuntimeError)
    │   ├── DerivativeBudgetError  (automata.brzozowski; also RuntimeError)
    │   ├── CountingBudgetExceeded counting-register cap (guard.budget)
    │   ├── AllocationFailed       wrapped MemoryError
    │   └── DeadlineExceeded       wall-clock budget
    │       └── ScanDeadlineExceeded   (engines; carries partial results)
    └── RuleQuarantined            a rule was isolated by GuardedCompiler

The legacy classes keep their legacy bases through multiple inheritance,
so ``except ValueError`` / ``except RuntimeError`` call sites keep
working; new code catches :class:`ReproError` (or a branch of it) once.

Every error carries an optional ``stage`` (pipeline stage name) and
``rule`` (offending rule id) so the CLI's single top-level handler can
print ``error: <stage>: <message>`` uniformly, and
:func:`exit_code_for` maps the branch to the process exit code:

========================  ====
outcome                   code
========================  ====
success                   0
any other ``ReproError``  1
``UsageError``            2
partial (quarantined)     3
``BudgetExceeded``        4
========================  ====

This module imports nothing from the rest of ``repro`` — it sits at the
bottom of the dependency graph so every subsystem can re-parent onto it.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ReproError",
    "UsageError",
    "CompileError",
    "FormatError",
    "ConnectionLost",
    "BudgetExceeded",
    "LoopBudgetExceeded",
    "MemoryBudgetExceeded",
    "CountingBudgetExceeded",
    "AllocationFailed",
    "DeadlineExceeded",
    "ScanDeadlineExceeded",
    "RuleQuarantined",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_USAGE",
    "EXIT_PARTIAL",
    "EXIT_BUDGET",
    "exit_code_for",
]

#: Process exit codes of the governed CLI (see module docstring).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3
EXIT_BUDGET = 4


class ReproError(Exception):
    """Base of every error the repro pipeline raises on purpose.

    ``stage`` names the pipeline stage that failed (``"frontend"``,
    ``"merging"``, ``"scan"``, …); ``rule`` is the offending rule id
    when one is attributable.  Subclasses may pin a ``default_stage``.
    """

    default_stage: Optional[str] = None

    def __init__(self, *args: Any, stage: Optional[str] = None, rule: Optional[int] = None) -> None:
        super().__init__(*args)
        self.stage = stage if stage is not None else self.default_stage
        self.rule = rule


class UsageError(ReproError, ValueError):
    """Bad CLI arguments or API misuse (unknown grouping/backend, empty
    ruleset file, missing inputs).  Maps to exit code 2."""

    default_stage = "usage"


class CompileError(ReproError):
    """Any failure turning pattern text into automata."""

    default_stage = "compile"


class FormatError(ReproError):
    """A serialized artifact (ANML, MFSA JSON) is malformed."""

    default_stage = "format"


class ConnectionLost(ReproError, ConnectionError):
    """A serve-protocol connection died mid-exchange: the peer closed
    (or truncated) a frame, reset the socket, or stopped answering
    within the request timeout.  The stream position is unknowable
    afterwards, so the connection must be re-established before reuse —
    :class:`~repro.serve.client.RetryPolicy` does exactly that.  Also a
    :class:`ConnectionError` so legacy ``except OSError`` call sites
    keep working; maps to exit code 1 like any other ``ReproError``."""

    default_stage = "serve-client"


class BudgetExceeded(ReproError):
    """A resource budget was exceeded (states, transitions, loop copies,
    memory, wall clock).  Carries which resource, the limit, the usage at
    the moment of the check, and a snapshot of the meter's counters."""

    default_stage = "budget"

    def __init__(
        self,
        message: str,
        *,
        resource: Optional[str] = None,
        limit: Optional[float] = None,
        used: Optional[float] = None,
        counters: Optional[dict] = None,
        stage: Optional[str] = None,
        rule: Optional[int] = None,
    ) -> None:
        super().__init__(message, stage=stage, rule=rule)
        self.resource = resource
        self.limit = limit
        self.used = used
        self.counters = dict(counters) if counters else {}


class LoopBudgetExceeded(BudgetExceeded):
    """A bounded repeat would expand into more copies than the budget
    allows; names the rule and the offending repeat sub-expression."""

    default_stage = "ast_to_fsa"

    def __init__(self, message: str, *, repeat: Optional[str] = None, **kwargs: Any) -> None:
        kwargs.setdefault("resource", "loop_copies")
        super().__init__(message, **kwargs)
        self.repeat = repeat


class MemoryBudgetExceeded(BudgetExceeded):
    """The cooperative (approximate) memory accounting crossed the
    configured ceiling."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("resource", "memory_bytes")
        super().__init__(message, **kwargs)


class CountingBudgetExceeded(BudgetExceeded):
    """A counting compile allocated more counter registers than the
    budget allows (``max_counting_registers``); names the rule whose
    bounded repeats pushed it over."""

    default_stage = "counting.registers"

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("resource", "counting_registers")
        super().__init__(message, **kwargs)


class AllocationFailed(BudgetExceeded):
    """A real :class:`MemoryError` (or an injected one) during backend
    setup, wrapped into the taxonomy so governed matchers can degrade."""

    default_stage = "engine"

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("resource", "memory_bytes")
        super().__init__(message, **kwargs)


class DeadlineExceeded(BudgetExceeded):
    """A wall-clock deadline expired during a governed operation."""

    def __init__(self, message: str, **kwargs: Any) -> None:
        kwargs.setdefault("resource", "wall_seconds")
        super().__init__(message, **kwargs)


class ScanDeadlineExceeded(DeadlineExceeded):
    """An engine scan ran past its deadline.  ``partial`` holds the
    :class:`~repro.engine.counters.RunResult` accumulated up to the
    abort point (matches found so far, honest ``chars_processed``), so
    callers never get a silent wrong answer — they get an explicit
    partial one."""

    default_stage = "scan"

    def __init__(self, message: str, *, partial: Any = None, **kwargs: Any) -> None:
        super().__init__(message, **kwargs)
        self.partial = partial


class RuleQuarantined(ReproError):
    """A rule was isolated by the guarded compiler.  Raised directly only
    when *no* rule survives; otherwise the per-rule instances live inside
    the :class:`~repro.guard.quarantine.QuarantineReport`."""

    default_stage = "quarantine"


def exit_code_for(error: BaseException) -> int:
    """Map an exception to the governed CLI's exit code."""
    if isinstance(error, UsageError):
        return EXIT_USAGE
    if isinstance(error, BudgetExceeded):
        return EXIT_BUDGET
    if isinstance(error, RuleQuarantined):
        return EXIT_PARTIAL
    if isinstance(error, ReproError):
        return EXIT_ERROR
    raise TypeError(f"not a ReproError: {error!r}")


def stage_of(error: BaseException) -> str:
    """The stage label for the CLI's ``error: <stage>: <message>`` line."""
    stage = getattr(error, "stage", None)
    return stage if stage else "repro"
