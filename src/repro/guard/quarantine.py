"""Structured record of which rules were isolated, where, and why.

A :class:`QuarantineReport` is the guarded compiler's audit trail: one
:class:`QuarantineEntry` per isolated rule carrying the original rule
id, the pattern text, the pipeline stage that failed, the taxonomy error
class and message, and the budget counters at the moment of failure.

Entries optionally carry a ``fallback_fsa`` — the rule's *individually*
compiled automaton, salvaged when the rule itself is fine but its
participation blew a group budget (merge explosion).  The degradation
ladder (:mod:`repro.guard.degrade`) simulates those per-rule so match
semantics survive end-to-end even for quarantined rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["QuarantineEntry", "QuarantineReport"]


@dataclass
class QuarantineEntry:
    """One isolated rule (see module docstring)."""

    rule: int
    pattern: str
    stage: str
    error_type: str
    message: str
    #: budget-meter counters at failure time (empty for non-budget errors)
    counters: dict = field(default_factory=dict)
    #: True when the rule compiled fine alone but was evicted because a
    #: group it joined blew a budget (salvage candidates)
    evicted: bool = False
    #: the rule's individually compiled FSA when salvageable, else None
    fallback_fsa: Optional[Any] = None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "pattern": self.pattern,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "counters": dict(self.counters),
            "evicted": self.evicted,
            "has_fallback": self.fallback_fsa is not None,
        }


@dataclass
class QuarantineReport:
    """All quarantined rules of one guarded compilation."""

    entries: list = field(default_factory=list)

    def add(self, entry: QuarantineEntry) -> None:
        self.entries.append(entry)

    def rules(self) -> list:
        """Quarantined rule ids, ascending."""
        return sorted(e.rule for e in self.entries)

    def entry_for(self, rule: int) -> Optional[QuarantineEntry]:
        for entry in self.entries:
            if entry.rule == rule:
                return entry
        return None

    def salvaged(self) -> list:
        """Entries that kept a per-rule fallback FSA."""
        return [e for e in self.entries if e.fallback_fsa is not None]

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[QuarantineEntry]:
        return iter(self.entries)

    def to_dict(self) -> dict:
        return {"quarantined": [e.to_dict() for e in sorted(self.entries, key=lambda e: e.rule)]}

    def summary_lines(self) -> list:
        """Human-readable per-rule lines for CLI output."""
        out = []
        for entry in sorted(self.entries, key=lambda e: e.rule):
            fallback = " [per-rule fallback active]" if entry.fallback_fsa is not None else ""
            out.append(
                f"rule {entry.rule} quarantined at {entry.stage}: "
                f"{entry.error_type}: {entry.message}{fallback}"
            )
        return out
