"""repro.guard — resource governance and graceful degradation.

The robustness layer threaded through the whole compile→match pipeline:

* :mod:`repro.guard.errors` — the :class:`ReproError` taxonomy every
  subsystem's exceptions are re-parented under, plus the CLI exit-code
  mapping (0 ok, 1 error, 2 usage, 3 partial/quarantined, 4 budget);
* :mod:`repro.guard.budget` — :class:`Budget` limits (states,
  transitions, loop copies, modelled memory, wall-clock deadline) and
  the cooperative :class:`BudgetMeter` the construction passes and scan
  loops charge against;
* :mod:`repro.guard.quarantine` — the structured
  :class:`QuarantineReport` of isolated rules;
* :mod:`repro.guard.compiler` — :class:`GuardedCompiler`, bisection-
  based per-rule failure isolation around ``compile_ruleset``;
* :mod:`repro.guard.degrade` — :class:`GuardedMatcher`, the
  dense→lazy→numpy→python backend ladder plus per-rule fallback simulation
  for quarantined rules;
* :mod:`repro.guard.faultinject` — named injection points (compile
  faults, engine-step delay, cache pressure, allocation failure) that
  let tests and drills prove every failure surfaces as a taxonomy
  error, never a hang.

``GuardedCompiler``/``GuardedMatcher`` (and the degrade module's
policies) are exported lazily: they import the pipeline and engines,
which themselves import the error/budget half of this package, and the
lazy hop keeps that dependency cycle one-directional at import time.
"""

from __future__ import annotations

from repro.guard.errors import (
    EXIT_BUDGET,
    EXIT_ERROR,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    AllocationFailed,
    BudgetExceeded,
    CompileError,
    CountingBudgetExceeded,
    DeadlineExceeded,
    FormatError,
    LoopBudgetExceeded,
    MemoryBudgetExceeded,
    ReproError,
    RuleQuarantined,
    ScanDeadlineExceeded,
    UsageError,
    exit_code_for,
    stage_of,
)
from repro.guard.budget import Budget, BudgetMeter
from repro.guard.quarantine import QuarantineEntry, QuarantineReport
from repro.guard import faultinject

__all__ = [
    "ReproError",
    "UsageError",
    "CompileError",
    "FormatError",
    "BudgetExceeded",
    "LoopBudgetExceeded",
    "MemoryBudgetExceeded",
    "CountingBudgetExceeded",
    "AllocationFailed",
    "DeadlineExceeded",
    "ScanDeadlineExceeded",
    "RuleQuarantined",
    "exit_code_for",
    "stage_of",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_USAGE",
    "EXIT_PARTIAL",
    "EXIT_BUDGET",
    "Budget",
    "BudgetMeter",
    "QuarantineEntry",
    "QuarantineReport",
    "faultinject",
    # lazily resolved (see __getattr__):
    "GuardedCompiler",
    "GuardedCompilation",
    "ON_ERROR_POLICIES",
    "GuardedMatcher",
    "GuardedRunResult",
    "DegradePolicy",
    "DegradationStep",
    "BACKEND_LADDER",
]

_LAZY = {
    "GuardedCompiler": "repro.guard.compiler",
    "GuardedCompilation": "repro.guard.compiler",
    "ON_ERROR_POLICIES": "repro.guard.compiler",
    "GuardedMatcher": "repro.guard.degrade",
    "GuardedRunResult": "repro.guard.degrade",
    "DegradePolicy": "repro.guard.degrade",
    "DegradationStep": "repro.guard.degrade",
    "BACKEND_LADDER": "repro.guard.degrade",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
