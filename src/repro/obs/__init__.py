"""repro.obs — the unified observability layer.

One instrumentation substrate for the whole compile→match pipeline:

* :mod:`repro.obs.spans` — nestable, thread-safe structured spans with
  wall + CPU time and attributes (stage timing, engine runs, merge
  progress, pool workers);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms, including
  the strided engine sampling of active-set size, frontier width, and
  transitions-per-byte;
* :mod:`repro.obs.exporters` — JSON-lines span dumps, Chrome
  trace-event JSON (Perfetto-loadable, thread lanes), Prometheus text
  exposition.

Everything is **off by default** and stays off the hot path: the only
cost left in instrumented code is a global load + ``is None`` test.
Turn it on globally with :func:`repro.obs.enable` (or ``REPRO_OBS=1``),
or scoped:

    import repro.obs as obs

    with obs.capture() as cap:
        result = compile_ruleset(patterns)
        engine.run(stream)
    print("\\n".join(cap.tracer.tree_lines()))
    print(obs.metrics_to_prometheus(cap.registry))

The ``repro obs`` CLI subcommand (see :mod:`repro.cli`) wraps exactly
this flow; ``--trace-out``/``--metrics-out`` on ``repro-compile`` /
``repro-match`` capture production invocations.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.obs.exporters import (
    metrics_to_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    DEFAULT_RESERVOIR,
    DEFAULT_SAMPLE_STRIDE,
    Counter,
    EngineSampler,
    Gauge,
    Histogram,
    MetricsRegistry,
    engine_sampler,
    merge_snapshots,
    quantile_label,
    quantiles_from_snapshot,
    sample_stride,
    set_sample_stride,
)
from repro.obs.spans import (
    NOOP_SPAN,
    Span,
    Tracer,
    begin_span,
    current_trace_id,
    end_span,
    iter_tree,
    new_trace_id,
    record_span,
    span,
    trace_context,
)

__all__ = [
    "Span",
    "Tracer",
    "span",
    "begin_span",
    "end_span",
    "record_span",
    "iter_tree",
    "NOOP_SPAN",
    "new_trace_id",
    "current_trace_id",
    "trace_context",
    "merge_snapshots",
    "quantile_label",
    "quantiles_from_snapshot",
    "DEFAULT_QUANTILES",
    "DEFAULT_RESERVOIR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EngineSampler",
    "engine_sampler",
    "sample_stride",
    "set_sample_stride",
    "DEFAULT_BUCKETS",
    "DEFAULT_SAMPLE_STRIDE",
    "enable",
    "disable",
    "is_enabled",
    "get_tracer",
    "get_registry",
    "capture",
    "ObsCapture",
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "metrics_to_prometheus",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]


def enable(
    tracer: Tracer | None = None, registry: MetricsRegistry | None = None
) -> tuple[Tracer, MetricsRegistry]:
    """Turn on both spans and metrics globally; returns the pair."""
    return _spans.enable(tracer), _metrics.enable(registry)


def disable() -> None:
    """Turn off both spans and metrics globally."""
    _spans.disable()
    _metrics.disable()


def is_enabled() -> bool:
    """True when *either* side of the layer is active."""
    return _spans.is_enabled() or _metrics.is_enabled()


def get_tracer() -> Tracer | None:
    return _spans.get_tracer()


def get_registry() -> MetricsRegistry | None:
    return _metrics.get_registry()


@dataclass
class ObsCapture:
    """The artifacts of one :func:`capture` scope."""

    tracer: Tracer
    registry: MetricsRegistry


@contextmanager
def capture(stride: int | None = None) -> Iterator[ObsCapture]:
    """Scoped observability: fresh tracer + registry for the block.

    Restores whatever was active before on exit (including "nothing"),
    so captures nest and never leak global state — the form tests and
    the CLI use.  ``stride`` overrides the engine sampling stride within
    the scope.
    """
    prev_tracer = _spans.get_tracer()
    prev_registry = _metrics.get_registry()
    prev_stride = _metrics.sample_stride()
    tracer = _spans.enable(Tracer())
    registry = _metrics.enable(MetricsRegistry())
    if stride is not None:
        _metrics.set_sample_stride(stride)
    try:
        yield ObsCapture(tracer=tracer, registry=registry)
    finally:
        _metrics.set_sample_stride(prev_stride)
        if prev_tracer is None:
            _spans.disable()
        else:
            _spans.enable(prev_tracer)
        if prev_registry is None:
            _metrics.disable()
        else:
            _metrics.enable(prev_registry)
