"""Exporters: span dumps and metric exposition in interoperable formats.

Three outputs, matching how runs are actually inspected:

* **JSON lines** (:func:`spans_to_jsonl`) — one span per line, the
  greppable archival form; pairs with
  :meth:`repro.engine.trace.ExecutionTrace.to_json` step dumps.
* **Chrome trace-event format** (:func:`spans_to_chrome_trace`) — loads
  directly into Perfetto / ``chrome://tracing``; spans become complete
  (``"ph": "X"``) events with microsecond timestamps, one lane per
  thread (pool workers from :mod:`repro.engine.multithread` each get
  their own lane, named via ``"M"`` metadata events).
* **Prometheus text exposition** (:func:`metrics_to_prometheus`) —
  counters/gauges as samples, histograms as cumulative ``_bucket{le=}``
  series plus ``_sum``/``_count``, ready for a scrape endpoint or
  ``promtool``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, Tracer

__all__ = [
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "metrics_to_prometheus",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]

#: pid used in trace events (single-process tool; fixed for stable diffs)
_TRACE_PID = 1


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into JSON-representable form."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def spans_to_jsonl(tracer: Tracer) -> str:
    """One JSON object per finished span, ordered by start time."""
    lines = []
    for span in tracer.spans():
        row = span.to_dict()
        row["attributes"] = _jsonable(row["attributes"])
        lines.append(json.dumps(row, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Trace-event JSON (the dict; ``json.dumps`` it for Perfetto).

    Emits complete events ("X") with ``ts``/``dur`` in microseconds on the
    tracer's timeline, plus ``thread_name`` metadata events so worker
    lanes are labelled.  Span attributes (and CPU time) ride in ``args``.
    """
    events: list[dict[str, Any]] = []
    seen_threads: dict[tuple[int, int], str] = {}
    for span in tracer.spans():
        if span.end is None:  # pragma: no cover - validate() rejects first
            continue
        # adopted cross-process spans carry their worker's pid; local
        # spans recorded before process_id existed fall back to the
        # historical fixed pid so single-process traces stay stable
        pid = span.process_id or _TRACE_PID
        seen_threads.setdefault((pid, span.thread_id), span.thread_name)
        args = {str(k): _jsonable(v) for k, v in span.attributes.items()}
        args["cpu_ms"] = round(span.cpu_time * 1e3, 6)
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": span.thread_id,
                "args": args,
            }
        )
    for (pid, tid), name in sorted(seen_threads.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": f"repro.obs tracer {tracer.name!r}",
            "epoch_unix": tracer.epoch_unix,
        },
    }


def _format_value(value: float) -> str:
    """Prometheus sample formatting (integers without the trailing .0)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Text exposition format 0.0.4 for every registered instrument."""
    lines: list[str] = []
    for inst in registry.instruments():
        if inst.help:
            lines.append(f"# HELP {inst.name} {inst.help}")
        lines.append(f"# TYPE {inst.name} {inst.kind}")
        if inst.kind == "histogram":
            for bound, cumulative in inst.cumulative_buckets():  # type: ignore[union-attr]
                lines.append(
                    f'{inst.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f"{inst.name}_sum {_format_value(inst.sum)}")  # type: ignore[union-attr]
            lines.append(f"{inst.name}_count {inst.count}")  # type: ignore[union-attr]
        else:
            lines.append(f"{inst.name} {_format_value(inst.value)}")  # type: ignore[union-attr]
    return "\n".join(lines) + ("\n" if lines else "")


# -- file helpers (the CLI's writers) ---------------------------------------


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(spans_to_chrome_trace(tracer), indent=2) + "\n")
    return path


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(spans_to_jsonl(tracer))
    return path


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(metrics_to_prometheus(registry))
    return path
