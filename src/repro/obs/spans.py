"""Structured span tracing: the timing substrate of the observability layer.

A *span* is one named, attributed interval of work — a compile stage, an
engine run, a merge step, a worker's slice of a thread-pool run.  Spans
nest: each thread keeps a stack, so ``with span("a"): with span("b")``
records ``b`` as a child of ``a``; cross-thread children (pool workers
under the pool's run span) pass ``parent=`` explicitly.  Every span
carries wall time (``time.perf_counter``) *and* CPU time
(``time.thread_time``), so off-CPU waits are visible, plus free-form
attributes attached at open or close.

Design constraints (mirroring the paper's measurement discipline and
production tracers alike):

* **Monotonic, high-resolution clocks only.**  All timing here and in
  the code instrumented with it uses ``perf_counter``/``thread_time``;
  wall-clock epoch time appears only once, as the tracer's anchor for
  exporters that want absolute timestamps.
* **Near-zero cost when disabled.**  The module-level :func:`span`
  fast-path is one global load and an ``is None`` test returning a
  shared no-op context manager — safe to leave in per-run (not per-byte)
  code unconditionally.  Per-byte sampling in the engines is additionally
  gated by its own ``is None`` check (see :mod:`repro.obs.metrics`).
* **Thread safety.**  Span stacks are thread-local; the finished-span
  list is lock-protected; ids come from an atomic counter.

Enable with :func:`enable` / the ``REPRO_OBS=1`` environment variable,
or scoped with :func:`repro.obs.capture`.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One recorded interval (see module docstring)."""

    name: str
    span_id: int
    parent_id: int | None
    thread_id: int
    thread_name: str
    #: seconds on the tracer's ``perf_counter`` timeline
    start: float
    end: float | None = None
    #: seconds of this thread's CPU time (``time.thread_time``)
    cpu_start: float = 0.0
    cpu_end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    #: ``"ok"`` or ``"error"`` (an exception escaped the span body)
    status: str = "ok"
    #: request/trace correlation id; rides the serve wire protocol so one
    #: request's spans can be stitched across processes (None = untraced)
    trace_id: str | None = None
    #: OS process that recorded the span (cross-process stitching keeps
    #: worker spans attributable to their worker)
    process_id: int = field(default_factory=os.getpid)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def cpu_time(self) -> float:
        """CPU seconds of the owning thread (0.0 while still open)."""
        return 0.0 if self.cpu_end is None else self.cpu_end - self.cpu_start

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "cpu_time": self.cpu_time,
            "status": self.status,
            "attributes": dict(self.attributes),
            "trace_id": self.trace_id,
            "process_id": self.process_id,
        }


class _SpanContext:
    """Context manager for one live span (created by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if exc is not None:
            span.status = "error"
            span.attributes.setdefault("error", repr(exc))
        self._tracer._pop(span)
        return False  # never swallow


class _NoopSpan:
    """The disabled-path stand-in: accepts the whole Span surface."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    status = "ok"
    duration = 0.0
    cpu_time = 0.0
    closed = True
    attributes: dict[str, Any] = {}
    trace_id = None
    process_id = 0

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def to_dict(self) -> dict[str, Any]:
        return {}

    # reentrant, shareable context manager
    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


# ---------------------------------------------------------------------------
# Trace context: one id per request, across threads/tasks/processes
# ---------------------------------------------------------------------------

#: the ambient trace id (contextvars: isolated per thread *and* per
#: asyncio task, and copied into ``asyncio.to_thread`` workers)
_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, collision-safe in practice)."""
    return os.urandom(8).hex()


def current_trace_id() -> str | None:
    """The ambient trace id set by :func:`trace_context`, or None."""
    return _TRACE_ID.get()


@contextmanager
def trace_context(trace_id: str | None) -> Iterator[str | None]:
    """Scope the ambient trace id: spans opened inside (in this thread or
    task, including ``asyncio.to_thread`` callees) are stamped with it.

    Explicit ``trace_id=`` arguments and parent inheritance take
    precedence; the context is the root-level default.
    """
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


class Tracer:
    """Thread-safe recorder of a span tree (or forest, one root per run).

    All public reads return snapshots; the tracer may keep recording
    concurrently.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        #: perf_counter value all span ``start``/``end`` are relative to
        self.epoch_perf = time.perf_counter()
        #: wall-clock anchor matching ``epoch_perf`` (for exporters only —
        #: never used for measuring durations)
        self.epoch_unix = time.time()
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._open: dict[int, Span] = {}
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- recording --------------------------------------------------------

    def span(
        self,
        name: str,
        parent: Span | None = None,
        trace_id: str | None = None,
        **attributes: Any,
    ) -> _SpanContext:
        """Open a span as a context manager.

        Nesting is automatic within a thread; pass ``parent=`` to adopt a
        span from another thread (e.g. pool workers under the pool span).
        A ``parent`` that is the no-op span (observability was off when it
        was created) is treated as "no explicit parent".

        The span's trace id resolves explicit ``trace_id=`` first, then
        the parent's, then the ambient :func:`trace_context`.
        """
        if parent is not None and not isinstance(parent, Span):
            parent = None
        stack = self._stack()
        resolved_parent = parent if parent is not None else (stack[-1] if stack else None)
        parent_id = resolved_parent.span_id if resolved_parent is not None else None
        if trace_id is None:
            if resolved_parent is not None and resolved_parent.trace_id is not None:
                trace_id = resolved_parent.trace_id
            else:
                trace_id = _TRACE_ID.get()
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start=time.perf_counter() - self.epoch_perf,
            cpu_start=time.thread_time(),
            attributes=dict(attributes),
            trace_id=trace_id,
        )
        return _SpanContext(self, span)

    def begin_span(
        self,
        name: str,
        parent: Span | None = None,
        trace_id: str | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a *detached* span: no thread-local stack interaction.

        The span must be closed with :meth:`end_span`.  Built for async
        code, where many requests interleave on one event-loop thread and
        stack-based nesting would mis-parent them — children attach via
        explicit ``parent=`` instead.
        """
        if parent is not None and not isinstance(parent, Span):
            parent = None
        if trace_id is None:
            if parent is not None and parent.trace_id is not None:
                trace_id = parent.trace_id
            else:
                trace_id = _TRACE_ID.get()
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start=time.perf_counter() - self.epoch_perf,
            cpu_start=time.thread_time(),
            attributes=dict(attributes),
            trace_id=trace_id,
        )
        with self._lock:
            self._open[span.span_id] = span
        return span

    def end_span(self, span: Span, status: str | None = None) -> None:
        """Close a span opened with :meth:`begin_span`."""
        if status is not None:
            span.status = status
        span.cpu_end = time.thread_time()
        span.end = time.perf_counter() - self.epoch_perf
        with self._lock:
            self._open.pop(span.span_id, None)
            self._finished.append(span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Span | None = None,
        trace_id: str | None = None,
        **attributes: Any,
    ) -> Span:
        """Record an already-measured interval as a finished span.

        ``start``/``end`` are *absolute* ``time.perf_counter`` values (the
        caller timed the phase itself — queue waits, frame encodes);
        they are re-based onto this tracer's timeline.  No stack, no
        clock reads: the phase-decomposition primitive.
        """
        if parent is not None and not isinstance(parent, Span):
            parent = None
        if trace_id is None:
            if parent is not None and parent.trace_id is not None:
                trace_id = parent.trace_id
            else:
                trace_id = _TRACE_ID.get()
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start=start - self.epoch_perf,
            end=end - self.epoch_perf,
            cpu_start=0.0,
            cpu_end=0.0,
            attributes=dict(attributes),
            trace_id=trace_id,
        )
        with self._lock:
            self._finished.append(span)
        return span

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)
        with self._lock:
            self._open[span.span_id] = span

    def _pop(self, span: Span) -> None:
        span.cpu_end = time.thread_time()
        span.end = time.perf_counter() - self.epoch_perf
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order close (shouldn't happen; stay consistent)
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._open.pop(span.span_id, None)
            self._finished.append(span)

    # -- reading ----------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans, ordered by start time."""
        with self._lock:
            snapshot = list(self._finished)
        return sorted(snapshot, key=lambda s: (s.start, s.span_id))

    def open_spans(self) -> list[Span]:
        with self._lock:
            return list(self._open.values())

    def roots(self) -> list[Span]:
        ids = {s.span_id for s in self.spans()}
        return [s for s in self.spans() if s.parent_id not in ids]

    def children(self, parent: Span) -> list[Span]:
        return [s for s in self.spans() if s.parent_id == parent.span_id]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._open.clear()

    # -- cross-process stitching ------------------------------------------

    def export_spans(
        self, trace_id: str | None = None, pop: bool = False
    ) -> list[dict[str, Any]]:
        """Finished spans as wire-shippable rows with *absolute* times.

        ``start_abs``/``end_abs`` are on the raw ``time.perf_counter``
        clock — CLOCK_MONOTONIC on Linux, shared machine-wide — so rows
        shipped between processes on one machine land on a common
        timeline.  ``trace_id`` filters to one request's spans; ``pop``
        additionally removes the exported spans from this tracer (the
        serve layer's keep-memory-bounded mode).
        """
        with self._lock:
            if trace_id is None:
                selected = list(self._finished)
            else:
                selected = [s for s in self._finished if s.trace_id == trace_id]
            if pop and selected:
                chosen = {id(s) for s in selected}
                self._finished = [s for s in self._finished if id(s) not in chosen]
        rows = []
        for span in sorted(selected, key=lambda s: (s.start, s.span_id)):
            row = span.to_dict()
            row["start_abs"] = span.start + self.epoch_perf
            row["end_abs"] = (span.end if span.end is not None else span.start) + self.epoch_perf
            rows.append(row)
        return rows

    def adopt_spans(
        self, rows: list[dict[str, Any]], parent: Span | None = None
    ) -> list[Span]:
        """Stitch exported rows (from another tracer/process) into this one.

        Rows get fresh span ids (no collisions with local spans), their
        parent links are remapped, and rows whose parent is not in the
        batch become children of ``parent`` (or roots).  Times are
        re-based from the rows' absolute clock onto this tracer's
        timeline — exact on one machine, where ``perf_counter`` is a
        shared monotonic clock.
        """
        if parent is not None and not isinstance(parent, Span):
            parent = None
        id_map: dict[int, int] = {}
        adopted: list[Span] = []
        for row in rows:
            old_id = row.get("span_id")
            new_id = next(self._ids)
            if isinstance(old_id, int):
                id_map[old_id] = new_id
            cpu = float(row.get("cpu_time") or 0.0)
            span = Span(
                name=str(row.get("name", "")),
                span_id=new_id,
                parent_id=row.get("parent_id"),  # remapped below
                thread_id=int(row.get("thread_id") or 0),
                thread_name=str(row.get("thread_name", "")),
                start=float(row["start_abs"]) - self.epoch_perf,
                end=float(row["end_abs"]) - self.epoch_perf,
                cpu_start=0.0,
                cpu_end=cpu,
                attributes=dict(row.get("attributes") or {}),
                status=str(row.get("status", "ok")),
                trace_id=row.get("trace_id"),
                process_id=int(row.get("process_id") or 0),
            )
            adopted.append(span)
        fallback = parent.span_id if parent is not None else None
        for span in adopted:
            old_parent = span.parent_id
            span.parent_id = (
                id_map[old_parent] if isinstance(old_parent, int) and old_parent in id_map
                else fallback
            )
        with self._lock:
            self._finished.extend(adopted)
        return adopted

    def prune(self, max_age_seconds: float) -> int:
        """Drop finished spans older than ``max_age_seconds``; returns the
        number removed.  Long-lived services (repro serve) call this so a
        service-owned tracer cannot grow without bound."""
        horizon = (time.perf_counter() - self.epoch_perf) - max_age_seconds
        with self._lock:
            before = len(self._finished)
            self._finished = [
                s for s in self._finished if s.end is None or s.end >= horizon
            ]
            return before - len(self._finished)

    def validate(self) -> None:
        """Raise ``ValueError`` on structural problems.

        Checks: every span closed; every non-root parent id exists and is
        closed; children fall inside their parent's wall interval (with a
        small clock-read tolerance — parents close *after* children).
        """
        spans = self.spans()
        if self.open_spans():
            names = ", ".join(s.name for s in self.open_spans())
            raise ValueError(f"unclosed spans: {names}")
        by_id = {s.span_id: s for s in spans}
        tolerance = 1e-6
        for s in spans:
            if s.parent_id is None:
                continue
            parent = by_id.get(s.parent_id)
            if parent is None:
                raise ValueError(f"span {s.name!r} has unknown parent id {s.parent_id}")
            assert s.end is not None and parent.end is not None
            if s.start < parent.start - tolerance or s.end > parent.end + tolerance:
                raise ValueError(
                    f"span {s.name!r} [{s.start:.6f}, {s.end:.6f}] escapes parent "
                    f"{parent.name!r} [{parent.start:.6f}, {parent.end:.6f}]"
                )

    def tree_lines(self) -> list[str]:
        """Indented pretty-print of the span forest (CLI output)."""
        spans = self.spans()
        by_parent: dict[int | None, list[Span]] = {}
        ids = {s.span_id for s in spans}
        for s in spans:
            key = s.parent_id if s.parent_id in ids else None
            by_parent.setdefault(key, []).append(s)

        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            attrs = ""
            if span.attributes:
                attrs = "  " + " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
            flag = "" if span.status == "ok" else "  [ERROR]"
            lines.append(
                f"{'  ' * depth}{span.name:<28} {span.duration * 1e3:9.3f} ms "
                f"(cpu {span.cpu_time * 1e3:8.3f} ms){flag}{attrs}"
            )
            for child in by_parent.get(span.span_id, ()):
                emit(child, depth + 1)

        for root in by_parent.get(None, ()):
            emit(root, 0)
        return lines


# ---------------------------------------------------------------------------
# Module-level switchboard (the fast path)
# ---------------------------------------------------------------------------

_ACTIVE: Tracer | None = None


def span(
    name: str,
    parent: Span | None = None,
    trace_id: str | None = None,
    **attributes: Any,
):
    """Open a span on the active tracer — or a shared no-op when disabled.

    This is the call sites' entry point; the disabled path is one global
    read and an ``is None`` test.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, parent=parent, trace_id=trace_id, **attributes)


def begin_span(
    name: str,
    parent: Span | None = None,
    trace_id: str | None = None,
    **attributes: Any,
):
    """Detached-span open on the active tracer (no-op span when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.begin_span(name, parent=parent, trace_id=trace_id, **attributes)


def end_span(span: Span | _NoopSpan, status: str | None = None) -> None:
    """Close a span from :func:`begin_span`; tolerates the no-op span and
    a tracer that was disabled in between."""
    tracer = _ACTIVE
    if tracer is None or not isinstance(span, Span):
        return
    tracer.end_span(span, status=status)


def record_span(
    name: str,
    start: float,
    end: float,
    parent: Span | None = None,
    trace_id: str | None = None,
    **attributes: Any,
):
    """Record a pre-measured absolute-time interval (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.record_span(
        name, start, end, parent=parent, trace_id=trace_id, **attributes
    )


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the active tracer; a fresh one by default."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> None:
    """Remove the active tracer (span() reverts to the no-op fast path)."""
    global _ACTIVE
    _ACTIVE = None


def get_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is disabled."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def _env_truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


#: honoured at import: REPRO_OBS=1 turns tracing (and metrics) on globally
if _env_truthy(os.environ.get("REPRO_OBS")):  # pragma: no cover - env-dependent
    enable()


def iter_tree(tracer: Tracer) -> Iterator[tuple[int, Span]]:
    """(depth, span) pairs in pre-order — convenience for custom renderers."""
    spans = tracer.spans()
    ids = {s.span_id for s in spans}
    by_parent: dict[int | None, list[Span]] = {}
    for s in spans:
        key = s.parent_id if s.parent_id in ids else None
        by_parent.setdefault(key, []).append(s)

    def walk(parent_key: int | None, depth: int) -> Iterator[tuple[int, Span]]:
        for s in by_parent.get(parent_key, ()):
            yield depth, s
            yield from walk(s.span_id, depth + 1)

    return walk(None, 0)
