"""Structured span tracing: the timing substrate of the observability layer.

A *span* is one named, attributed interval of work — a compile stage, an
engine run, a merge step, a worker's slice of a thread-pool run.  Spans
nest: each thread keeps a stack, so ``with span("a"): with span("b")``
records ``b`` as a child of ``a``; cross-thread children (pool workers
under the pool's run span) pass ``parent=`` explicitly.  Every span
carries wall time (``time.perf_counter``) *and* CPU time
(``time.thread_time``), so off-CPU waits are visible, plus free-form
attributes attached at open or close.

Design constraints (mirroring the paper's measurement discipline and
production tracers alike):

* **Monotonic, high-resolution clocks only.**  All timing here and in
  the code instrumented with it uses ``perf_counter``/``thread_time``;
  wall-clock epoch time appears only once, as the tracer's anchor for
  exporters that want absolute timestamps.
* **Near-zero cost when disabled.**  The module-level :func:`span`
  fast-path is one global load and an ``is None`` test returning a
  shared no-op context manager — safe to leave in per-run (not per-byte)
  code unconditionally.  Per-byte sampling in the engines is additionally
  gated by its own ``is None`` check (see :mod:`repro.obs.metrics`).
* **Thread safety.**  Span stacks are thread-local; the finished-span
  list is lock-protected; ids come from an atomic counter.

Enable with :func:`enable` / the ``REPRO_OBS=1`` environment variable,
or scoped with :func:`repro.obs.capture`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One recorded interval (see module docstring)."""

    name: str
    span_id: int
    parent_id: int | None
    thread_id: int
    thread_name: str
    #: seconds on the tracer's ``perf_counter`` timeline
    start: float
    end: float | None = None
    #: seconds of this thread's CPU time (``time.thread_time``)
    cpu_start: float = 0.0
    cpu_end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    #: ``"ok"`` or ``"error"`` (an exception escaped the span body)
    status: str = "ok"

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def cpu_time(self) -> float:
        """CPU seconds of the owning thread (0.0 while still open)."""
        return 0.0 if self.cpu_end is None else self.cpu_end - self.cpu_start

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "cpu_time": self.cpu_time,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class _SpanContext:
    """Context manager for one live span (created by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if exc is not None:
            span.status = "error"
            span.attributes.setdefault("error", repr(exc))
        self._tracer._pop(span)
        return False  # never swallow


class _NoopSpan:
    """The disabled-path stand-in: accepts the whole Span surface."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    status = "ok"
    duration = 0.0
    cpu_time = 0.0
    closed = True
    attributes: dict[str, Any] = {}

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def to_dict(self) -> dict[str, Any]:
        return {}

    # reentrant, shareable context manager
    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Thread-safe recorder of a span tree (or forest, one root per run).

    All public reads return snapshots; the tracer may keep recording
    concurrently.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        #: perf_counter value all span ``start``/``end`` are relative to
        self.epoch_perf = time.perf_counter()
        #: wall-clock anchor matching ``epoch_perf`` (for exporters only —
        #: never used for measuring durations)
        self.epoch_unix = time.time()
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._open: dict[int, Span] = {}
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- recording --------------------------------------------------------

    def span(self, name: str, parent: Span | None = None, **attributes: Any) -> _SpanContext:
        """Open a span as a context manager.

        Nesting is automatic within a thread; pass ``parent=`` to adopt a
        span from another thread (e.g. pool workers under the pool span).
        A ``parent`` that is the no-op span (observability was off when it
        was created) is treated as "no explicit parent".
        """
        if parent is not None and not isinstance(parent, Span):
            parent = None
        stack = self._stack()
        if parent is not None:
            parent_id: int | None = parent.span_id
        elif stack:
            parent_id = stack[-1].span_id
        else:
            parent_id = None
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start=time.perf_counter() - self.epoch_perf,
            cpu_start=time.thread_time(),
            attributes=dict(attributes),
        )
        return _SpanContext(self, span)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)
        with self._lock:
            self._open[span.span_id] = span

    def _pop(self, span: Span) -> None:
        span.cpu_end = time.thread_time()
        span.end = time.perf_counter() - self.epoch_perf
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order close (shouldn't happen; stay consistent)
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._open.pop(span.span_id, None)
            self._finished.append(span)

    # -- reading ----------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans, ordered by start time."""
        with self._lock:
            snapshot = list(self._finished)
        return sorted(snapshot, key=lambda s: (s.start, s.span_id))

    def open_spans(self) -> list[Span]:
        with self._lock:
            return list(self._open.values())

    def roots(self) -> list[Span]:
        ids = {s.span_id for s in self.spans()}
        return [s for s in self.spans() if s.parent_id not in ids]

    def children(self, parent: Span) -> list[Span]:
        return [s for s in self.spans() if s.parent_id == parent.span_id]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._open.clear()

    def validate(self) -> None:
        """Raise ``ValueError`` on structural problems.

        Checks: every span closed; every non-root parent id exists and is
        closed; children fall inside their parent's wall interval (with a
        small clock-read tolerance — parents close *after* children).
        """
        spans = self.spans()
        if self.open_spans():
            names = ", ".join(s.name for s in self.open_spans())
            raise ValueError(f"unclosed spans: {names}")
        by_id = {s.span_id: s for s in spans}
        tolerance = 1e-6
        for s in spans:
            if s.parent_id is None:
                continue
            parent = by_id.get(s.parent_id)
            if parent is None:
                raise ValueError(f"span {s.name!r} has unknown parent id {s.parent_id}")
            assert s.end is not None and parent.end is not None
            if s.start < parent.start - tolerance or s.end > parent.end + tolerance:
                raise ValueError(
                    f"span {s.name!r} [{s.start:.6f}, {s.end:.6f}] escapes parent "
                    f"{parent.name!r} [{parent.start:.6f}, {parent.end:.6f}]"
                )

    def tree_lines(self) -> list[str]:
        """Indented pretty-print of the span forest (CLI output)."""
        spans = self.spans()
        by_parent: dict[int | None, list[Span]] = {}
        ids = {s.span_id for s in spans}
        for s in spans:
            key = s.parent_id if s.parent_id in ids else None
            by_parent.setdefault(key, []).append(s)

        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            attrs = ""
            if span.attributes:
                attrs = "  " + " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
            flag = "" if span.status == "ok" else "  [ERROR]"
            lines.append(
                f"{'  ' * depth}{span.name:<28} {span.duration * 1e3:9.3f} ms "
                f"(cpu {span.cpu_time * 1e3:8.3f} ms){flag}{attrs}"
            )
            for child in by_parent.get(span.span_id, ()):
                emit(child, depth + 1)

        for root in by_parent.get(None, ()):
            emit(root, 0)
        return lines


# ---------------------------------------------------------------------------
# Module-level switchboard (the fast path)
# ---------------------------------------------------------------------------

_ACTIVE: Tracer | None = None


def span(name: str, parent: Span | None = None, **attributes: Any):
    """Open a span on the active tracer — or a shared no-op when disabled.

    This is the call sites' entry point; the disabled path is one global
    read and an ``is None`` test.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, parent=parent, **attributes)


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the active tracer; a fresh one by default."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> None:
    """Remove the active tracer (span() reverts to the no-op fast path)."""
    global _ACTIVE
    _ACTIVE = None


def get_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is disabled."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def _env_truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


#: honoured at import: REPRO_OBS=1 turns tracing (and metrics) on globally
if _env_truthy(os.environ.get("REPRO_OBS")):  # pragma: no cover - env-dependent
    enable()


def iter_tree(tracer: Tracer) -> Iterator[tuple[int, Span]]:
    """(depth, span) pairs in pre-order — convenience for custom renderers."""
    spans = tracer.spans()
    ids = {s.span_id for s in spans}
    by_parent: dict[int | None, list[Span]] = {}
    for s in spans:
        key = s.parent_id if s.parent_id in ids else None
        by_parent.setdefault(key, []).append(s)

    def walk(parent_key: int | None, depth: int) -> Iterator[tuple[int, Span]]:
        for s in by_parent.get(parent_key, ()):
            yield depth, s
            yield from walk(s.span_id, depth + 1)

    return walk(None, 0)
