"""Metrics registry: named counters, gauges, and histograms.

The runtime-distribution side of the observability layer (spans answer
"where did the time go", metrics answer "what did the run look like"):
per-symbol active-set sizes, frontier widths, transitions evaluated per
byte — the quantities behind the paper's Table II and the §VI-C
active-set discussion — plus whatever counters/gauges call sites want.

Instruments are get-or-create by name from a :class:`MetricsRegistry`;
the module-level accessors mirror :mod:`repro.obs.spans`: when no
registry is active, :func:`engine_sampler` returns ``None`` and the
engines skip their per-byte sampling entirely (their only residual cost
is one ``is not None`` test per consumed byte).

Engine sampling is *strided*: every ``stride``-th position is observed
(default :data:`DEFAULT_SAMPLE_STRIDE`, override via
``REPRO_OBS_STRIDE`` or :func:`set_sample_stride`).  Both iMFAnt
backends sample the same positions with the same definitions, so their
histograms agree exactly — the cross-backend invariant the engines
already guarantee for work counters, extended to distributions (tested).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EngineSampler",
    "DEFAULT_SAMPLE_STRIDE",
    "DEFAULT_BUCKETS",
    "DEFAULT_RESERVOIR",
    "DEFAULT_QUANTILES",
    "enable",
    "disable",
    "get_registry",
    "is_enabled",
    "engine_sampler",
    "sample_stride",
    "set_sample_stride",
    "merge_snapshots",
    "quantiles_from_snapshot",
    "quantile_label",
]

#: Exponential bucket upper bounds (≤) for the runtime histograms:
#: 1, 2, 4, … 4096 covers active sets from "one rule alive" to the
#: pathological-merge regime; +Inf is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(float(2 ** i) for i in range(13))

#: Sample every Nth consumed byte in the engines.
DEFAULT_SAMPLE_STRIDE = 64

#: Max raw values a histogram keeps for quantile estimation.  The
#: reservoir is a *deterministic decimating* one — values are kept while
#: the observation index is a multiple of the keep-stride, and on
#: overflow the kept list is thinned ``[::2]`` and the stride doubled —
#: so two histograms fed the identical value sequence hold identical
#: reservoirs (the cross-backend identical-snapshot invariant extends to
#: quantiles).  Quantiles are exact while ``count <= DEFAULT_RESERVOIR``
#: and systematic-sample estimates beyond.
DEFAULT_RESERVOIR = 1024

#: Default quantile set for snapshots and summaries.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.95, 0.99)


def quantile_label(q: float) -> str:
    """``0.5 -> "p50"``, ``0.999 -> "p99.9"`` — the snapshot key format."""
    return f"p{q * 100:g}"


def _rank(ordered: list[float], q: float) -> float | None:
    """Nearest-rank quantile of an already-sorted value list."""
    if not ordered:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    index = int(q * len(ordered))
    return ordered[min(index, len(ordered) - 1)]


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "value": self._value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "value": self._value}


class Histogram:
    """Fixed-bucket distribution (Prometheus-style cumulative export).

    ``bounds`` are inclusive upper edges of the finite buckets; an
    implicit +Inf bucket catches the rest.  ``counts`` are *per-bucket*
    (non-cumulative) internally; the exporter accumulates.
    """

    kind = "histogram"
    __slots__ = (
        "name", "help", "bounds", "counts",
        "_sum", "_count", "_min", "_max",
        "_values", "_keep_stride", "_lock",
    )

    def __init__(self, name: str, bounds: Iterable[float] | None = None, help: str = "") -> None:
        self.name = name
        self.help = help
        edges = tuple(sorted(float(b) for b in (bounds if bounds is not None else DEFAULT_BUCKETS)))
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(edges)) != len(edges):
            raise ValueError("duplicate histogram bucket bounds")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._min: float | None = None
        self._max: float | None = None
        self._values: list[float] = []  # decimating reservoir (see DEFAULT_RESERVOIR)
        self._keep_stride = 1
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # linear scan: bucket lists are short (≤ ~16) and the scan is
        # cheaper than bisect's call overhead at these sizes
        index = 0
        bounds = self.bounds
        while index < len(bounds) and value > bounds[index]:
            index += 1
        with self._lock:
            self.counts[index] += 1
            if self._count % self._keep_stride == 0:
                self._values.append(value)
                if len(self._values) > DEFAULT_RESERVOIR:
                    self._values = self._values[::2]
                    self._keep_stride *= 2
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs ending with (+Inf, count)."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile over the kept values (None when empty).

        Exact while ``count <= DEFAULT_RESERVOIR``; beyond that it is a
        systematic 1-in-``keep_stride`` sample of the observation stream,
        which for latency-style streams keeps tail quantiles within one
        stride-step of exact.
        """
        with self._lock:
            ordered = sorted(self._values)
        return _rank(ordered, q)

    def quantiles(self, qs: Iterable[float] = DEFAULT_QUANTILES) -> dict[str, float | None]:
        """``{"p50": ..., "p90": ...}`` over the kept values."""
        with self._lock:
            ordered = sorted(self._values)
        return {quantile_label(q): _rank(ordered, q) for q in qs}

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            values = list(self._values)
            stride = self._keep_stride
            snap = {
                "kind": self.kind,
                "name": self.name,
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min,
                "max": self._max,
                "values": values,
                "sample_stride": stride,
            }
        ordered = sorted(values)
        snap["quantiles"] = {quantile_label(q): _rank(ordered, q) for q in DEFAULT_QUANTILES}
        return snap


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors.

    Re-requesting a name returns the existing instrument; requesting it
    as a different kind raises (names are global within a registry).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                return existing
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(self, name: str, bounds: Iterable[float] | None = None, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, bounds=bounds, help=help)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """JSON-ready snapshot of every instrument."""
        return {inst.name: inst.snapshot() for inst in self.instruments()}

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()


# ---------------------------------------------------------------------------
# Engine sampling
# ---------------------------------------------------------------------------


class EngineSampler:
    """Per-run bundle of the three runtime histograms + a sampling stride.

    One instance is created at the top of an engine run (so histogram
    lookups stay out of the byte loop); :meth:`observe` is called at the
    sampled positions only.
    """

    __slots__ = ("stride", "active_set", "frontier", "transitions", "samples")

    def __init__(self, prefix: str, registry: MetricsRegistry, stride: int) -> None:
        if stride < 1:
            raise ValueError("sampling stride must be >= 1")
        self.stride = stride
        self.active_set = registry.histogram(
            f"{prefix}_active_set_size",
            help="active (state, rule) pairs at sampled positions",
        )
        self.frontier = registry.histogram(
            f"{prefix}_frontier_width",
            help="distinct active states at sampled positions",
        )
        self.transitions = registry.histogram(
            f"{prefix}_transitions_per_byte",
            help="transitions evaluated for the sampled consumed byte",
        )
        self.samples = registry.counter(
            f"{prefix}_samples_total", help="positions sampled"
        )

    def observe(self, active_pairs: int, frontier_width: int, transitions: int) -> None:
        self.active_set.observe(active_pairs)
        self.frontier.observe(frontier_width)
        self.transitions.observe(transitions)
        self.samples.inc()


# ---------------------------------------------------------------------------
# Module-level switchboard
# ---------------------------------------------------------------------------

_ACTIVE: MetricsRegistry | None = None
_STRIDE = DEFAULT_SAMPLE_STRIDE


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the active registry; a fresh one by default."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


def get_registry() -> MetricsRegistry | None:
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def sample_stride() -> int:
    return _STRIDE


def set_sample_stride(stride: int) -> None:
    """Set the global engine sampling stride (1 = every byte)."""
    global _STRIDE
    if stride < 1:
        raise ValueError("sampling stride must be >= 1")
    _STRIDE = stride


def engine_sampler(prefix: str) -> EngineSampler | None:
    """An :class:`EngineSampler` on the active registry, or None when off.

    The engines call this once per run; a ``None`` return removes all
    sampling work from the run.
    """
    registry = _ACTIVE
    if registry is None:
        return None
    return EngineSampler(prefix, registry, _STRIDE)


def _env_stride() -> None:  # pragma: no cover - env-dependent
    raw = os.environ.get("REPRO_OBS_STRIDE")
    if raw:
        try:
            set_sample_stride(int(raw))
        except ValueError:
            pass


_env_stride()


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge instrument snapshots of the *same* instrument (sharded runs).

    Counters/gauges sum; histograms require identical bounds and sum
    counts element-wise.  Used by callers aggregating per-shard
    registries into fleet totals.
    """
    merged: dict[str, Any] | None = None
    for snap in snapshots:
        if merged is None:
            merged = dict(snap)
            if "counts" in merged:
                merged["counts"] = list(merged["counts"])
            if "values" in merged:
                merged["values"] = list(merged["values"])
            continue
        if snap["kind"] != merged["kind"] or snap["name"] != merged["name"]:
            raise ValueError("cannot merge snapshots of different instruments")
        if merged["kind"] == "histogram":
            if list(snap["bounds"]) != list(merged["bounds"]):
                raise ValueError("histogram bounds differ")
            merged["counts"] = [a + b for a, b in zip(merged["counts"], snap["counts"])]
            merged["sum"] += snap["sum"]
            merged["count"] += snap["count"]
            for key, pick in (("min", min), ("max", max)):
                values = [v for v in (merged.get(key), snap.get(key)) if v is not None]
                merged[key] = pick(values) if values else None
            merged["values"], merged["sample_stride"] = _merge_reservoirs(
                merged.get("values"), merged.get("sample_stride"),
                snap.get("values"), snap.get("sample_stride"),
            )
        else:
            merged["value"] += snap["value"]
    if merged is None:
        raise ValueError("no snapshots to merge")
    if merged.get("kind") == "histogram":
        ordered = sorted(merged.get("values") or [])
        merged["quantiles"] = {quantile_label(q): _rank(ordered, q) for q in DEFAULT_QUANTILES}
    return merged


def _merge_reservoirs(
    values_a: Iterable[float] | None,
    stride_a: Any,
    values_b: Iterable[float] | None,
    stride_b: Any,
) -> tuple[list[float], int]:
    """Combine two decimating reservoirs at a common keep-stride.

    Strides are powers of two (observe/thin only ever doubles them), so
    the finer reservoir is thinned ``[:: coarse // fine]`` to match the
    coarser before concatenation; overflow re-decimates.  Merging is
    associative up to one extra decimation step, which is why sharded
    quantiles stay within the documented one-stride-step error.
    """
    a = list(values_a or [])
    b = list(values_b or [])
    sa = max(int(stride_a or 1), 1)
    sb = max(int(stride_b or 1), 1)
    stride = max(sa, sb)
    if sa < stride:
        a = a[:: stride // sa]
    if sb < stride:
        b = b[:: stride // sb]
    values = a + b
    while len(values) > DEFAULT_RESERVOIR:
        values = values[::2]
        stride *= 2
    return values, stride


def quantiles_from_snapshot(
    snapshot: Mapping[str, Any], qs: Iterable[float] = DEFAULT_QUANTILES
) -> dict[str, float | None]:
    """Quantile estimates from a histogram snapshot.

    Uses the raw value reservoir when present (nearest-rank, exact for
    small counts); otherwise falls back to linear interpolation within
    the cumulative buckets — coarse, but workable for foreign snapshots
    that carry only bucket counts.
    """
    values = snapshot.get("values")
    if values:
        ordered = sorted(values)
        return {quantile_label(q): _rank(ordered, q) for q in qs}
    counts = list(snapshot.get("counts") or [])
    bounds = list(snapshot.get("bounds") or [])
    total = sum(counts)
    out: dict[str, float | None] = {}
    if not total or not counts:
        return {quantile_label(q): None for q in qs}
    lo_anchor = snapshot.get("min")
    hi_anchor = snapshot.get("max")
    for q in qs:
        target = q * total
        running = 0.0
        estimate: float | None = None
        for i, c in enumerate(counts):
            prev = running
            running += c
            if running >= target and c:
                lower = lo_anchor if i == 0 else bounds[i - 1]
                if lower is None:
                    lower = 0.0
                upper = bounds[i] if i < len(bounds) else hi_anchor
                if upper is None:
                    upper = lower
                frac = (target - prev) / c
                estimate = lower + (upper - lower) * max(0.0, min(1.0, frac))
                break
        if estimate is None:
            estimate = hi_anchor
        if estimate is not None:
            if lo_anchor is not None:
                estimate = max(estimate, lo_anchor)
            if hi_anchor is not None:
                estimate = min(estimate, hi_anchor)
        out[quantile_label(q)] = estimate
    return out
